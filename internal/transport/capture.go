package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"blinkradar/internal/rf"
)

// This file implements the versioned .brc capture format (v1): the
// on-disk substrate of record/replay evaluation. Layout:
//
//	file header (44 bytes):
//	  0  [8]byte  magic "BRC1" 0xB1 0x1C '\r' '\n'
//	  8  uint16   capture format version (1)
//	  10 uint16   reserved (0)
//	  12 uint32   bin count
//	  16 float64  frame rate (frames/s)
//	  24 float64  bin spacing (m)
//	  32 uint64   start time (unix microseconds; 0 = unknown/synthetic)
//	  40 uint32   CRC32 (IEEE) over bytes 0..40
//	frames: each in the wire codec format (per-frame header + CRC,
//	  see codec.go), geometry pinned to the file header's bin count
//	footer (written at Close):
//	  uint32   footer magic "BRIX"
//	  uint32   reserved (0)
//	  uint64   frame count
//	  N×uint64 absolute file offset of each frame
//	  uint32   CRC32 (IEEE) over the footer up to here
//	  uint64   absolute file offset of the footer magic
//	  [8]byte  trailer magic "BRCE" 0xB1 0x1C '\r' '\n'
//
// The trailing footer makes a finished capture seekable (O(1) to any
// frame) without breaking streaming writes: frames are appended as
// they arrive and the index is emitted once, at Close. A capture cut
// short — crash, power loss, torn copy — simply lacks the footer (or
// carries a damaged one); CaptureReader then rebuilds the index by
// scanning the CRC-framed frames and surfaces the damage as
// ErrTruncatedCapture while still serving every intact frame. Legacy
// v0 captures (stream hello + frames, no index) load through the same
// reader.

// ErrTruncatedCapture marks a capture whose tail is missing or
// damaged — a torn write, a crash before Close, a partial copy. It is
// a recoverable condition: CaptureReader still serves the intact
// frame prefix; the error reports that the file does not end cleanly.
var ErrTruncatedCapture = errors.New("transport: truncated capture")

// CaptureVersion is the current capture file format version.
const CaptureVersion = 1

var (
	captureMagic  = [8]byte{'B', 'R', 'C', '1', 0xB1, 0x1C, '\r', '\n'}
	captureTrail  = [8]byte{'B', 'R', 'C', 'E', 0xB1, 0x1C, '\r', '\n'}
	captureFooter = [4]byte{'B', 'R', 'I', 'X'}
)

const (
	captureHeaderSize = 44
	// captureFooterFixed is the footer size without the offset table:
	// magic(4) reserved(4) count(8) crc(4).
	captureFooterFixed = 20
	// captureTailSize is the fixed tail after the footer: the footer's
	// own offset (8) plus the trailer magic (8).
	captureTailSize = 16
)

// CaptureHeader describes a capture file: its format version, the
// stream geometry, and the recording start time.
type CaptureHeader struct {
	// Version is the capture format version: 1 for indexed .brc v1
	// files, 0 for legacy hello+frames captures.
	Version int
	// Hello is the stream geometry (frame rate, bin spacing, bins).
	Hello StreamHello
	// StartTimeMicros is the recording start in unix microseconds;
	// zero means unknown (synthetic captures). v0 files carry none.
	StartTimeMicros uint64
}

// syncer is the subset of *os.File Checkpoint needs to make buffered
// frames durable.
type syncer interface{ Sync() error }

// CaptureWriter streams frames into a .brc v1 capture. Frames are
// buffered and CRC-framed as written; the seekable index is emitted as
// a footer by Close. Periodic checkpoints (every CheckpointEvery
// frames, or explicit Checkpoint calls) flush — and, when the
// destination supports it, fsync — so a crash mid-capture loses at
// most the frames since the last checkpoint: everything before it is
// recoverable by CaptureReader's torn-tail scan even though the
// footer was never written.
type CaptureWriter struct {
	bw      *bufio.Writer
	sync    syncer
	enc     *Encoder
	hello   StreamHello
	start   uint64
	offsets []int64
	off     int64
	every   int
	since   int
	closed  bool
}

// NewCaptureWriter writes the v1 file header for the given geometry
// and returns a writer appending frames to w. startMicros stamps the
// recording start (unix microseconds; 0 for synthetic captures). The
// caller owns w; Close finishes the capture but does not close it.
func NewCaptureWriter(w io.Writer, hello StreamHello, startMicros uint64) (*CaptureWriter, error) {
	if !plausibleHello(hello) {
		return nil, fmt.Errorf("transport: invalid capture geometry %+v", hello)
	}
	bw := bufio.NewWriter(w)
	var hdr [captureHeaderSize]byte
	copy(hdr[0:], captureMagic[:])
	binary.BigEndian.PutUint16(hdr[8:], CaptureVersion)
	binary.BigEndian.PutUint32(hdr[12:], hello.NumBins)
	binary.BigEndian.PutUint64(hdr[16:], math.Float64bits(hello.FrameRate))
	binary.BigEndian.PutUint64(hdr[24:], math.Float64bits(hello.BinSpacing))
	binary.BigEndian.PutUint64(hdr[32:], startMicros)
	binary.BigEndian.PutUint32(hdr[40:], crc32.ChecksumIEEE(hdr[:40]))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: write capture header: %w", err)
	}
	cw := &CaptureWriter{
		bw:    bw,
		enc:   NewEncoder(bw),
		hello: hello,
		start: startMicros,
		off:   captureHeaderSize,
		every: 256,
	}
	if s, ok := w.(syncer); ok {
		cw.sync = s
	}
	return cw, nil
}

// SetCheckpointEvery changes the automatic checkpoint period in frames
// (default 256); zero or negative disables automatic checkpoints.
func (cw *CaptureWriter) SetCheckpointEvery(n int) { cw.every = n }

// NumFrames reports the frames written so far.
func (cw *CaptureWriter) NumFrames() int { return len(cw.offsets) }

// WriteFrame appends one frame. The geometry is pinned: a frame whose
// bin count differs from the header's is refused.
func (cw *CaptureWriter) WriteFrame(f Frame) error {
	if cw.closed {
		return errors.New("transport: WriteFrame on a closed capture")
	}
	if len(f.Bins) != int(cw.hello.NumBins) {
		return fmt.Errorf("transport: frame has %d bins, capture pins %d", len(f.Bins), cw.hello.NumBins)
	}
	if err := cw.enc.Encode(f); err != nil {
		return err
	}
	cw.offsets = append(cw.offsets, cw.off)
	cw.off += int64(frameWireSize(len(f.Bins)))
	cw.since++
	if cw.every > 0 && cw.since >= cw.every {
		return cw.Checkpoint()
	}
	return nil
}

// Checkpoint flushes buffered frames to the destination and, when it
// supports Sync (an *os.File does), forces them to stable storage.
// After a checkpoint every frame written so far survives a crash: the
// torn capture loses its footer, not its frames.
func (cw *CaptureWriter) Checkpoint() error {
	cw.since = 0
	if err := cw.enc.Flush(); err != nil {
		return err
	}
	if err := cw.bw.Flush(); err != nil {
		return fmt.Errorf("transport: checkpoint flush: %w", err)
	}
	if cw.sync != nil {
		if err := cw.sync.Sync(); err != nil {
			return fmt.Errorf("transport: checkpoint sync: %w", err)
		}
	}
	return nil
}

// Close writes the index footer and flushes the capture. The writer is
// unusable afterwards; the underlying file remains open (the caller
// owns it). Close is not idempotent: a second call reports an error.
func (cw *CaptureWriter) Close() error {
	if cw.closed {
		return errors.New("transport: capture already closed")
	}
	cw.closed = true
	if err := cw.enc.Flush(); err != nil {
		return err
	}
	footerOff := cw.off
	footer := make([]byte, captureFooterFixed-4+len(cw.offsets)*8)
	copy(footer[0:], captureFooter[:])
	binary.BigEndian.PutUint32(footer[4:], 0)
	binary.BigEndian.PutUint64(footer[8:], uint64(len(cw.offsets)))
	for i, off := range cw.offsets {
		binary.BigEndian.PutUint64(footer[16+i*8:], uint64(off))
	}
	var tail [4 + captureTailSize]byte
	binary.BigEndian.PutUint32(tail[0:], crc32.ChecksumIEEE(footer))
	binary.BigEndian.PutUint64(tail[4:], uint64(footerOff))
	copy(tail[12:], captureTrail[:])
	if _, err := cw.bw.Write(footer); err != nil {
		return fmt.Errorf("transport: write capture footer: %w", err)
	}
	if _, err := cw.bw.Write(tail[:]); err != nil {
		return fmt.Errorf("transport: write capture trailer: %w", err)
	}
	if err := cw.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush capture: %w", err)
	}
	if cw.sync != nil {
		if err := cw.sync.Sync(); err != nil {
			return fmt.Errorf("transport: sync capture: %w", err)
		}
	}
	return nil
}

// CaptureReader reads .brc captures — v1 (indexed) and legacy v0
// (hello + frames) — with torn-write recovery: a file whose footer is
// missing or damaged, or whose frame stream is cut mid-frame, still
// yields every intact frame; Truncated reports the damage as an error
// wrapping ErrTruncatedCapture. Frames are CRC-validated on every
// read, whether reached sequentially or via the index.
//
// The reader is single-goroutine; Next returns a frame whose Bins
// slice is reused by the following Next or Seek.
type CaptureReader struct {
	r      io.ReadSeeker
	br     *bufio.Reader
	header CaptureHeader

	offsets []int64
	indexed bool // offsets came from a valid footer, not a scan
	trunc   error

	pos     int // frame index the next Next will read
	aligned bool

	scratchHeader []byte
	scratchBody   []byte
	bins          []complex128
}

// NewCaptureReader opens a capture. The constructor validates the
// header, then either loads the footer index (fast path) or — when the
// footer is missing or implausible — rebuilds the index by scanning
// the frames, recording how far the intact prefix reaches. A file cut
// before the header is complete cannot be opened and returns an error
// wrapping ErrTruncatedCapture; anything longer opens with the frames
// that survived.
func NewCaptureReader(r io.ReadSeeker) (*CaptureReader, error) {
	cr := &CaptureReader{
		r:             r,
		br:            bufio.NewReader(r),
		scratchHeader: make([]byte, headerSize),
	}
	if err := cr.readHeader(); err != nil {
		return nil, err
	}
	cr.bins = make([]complex128, cr.header.Hello.NumBins)
	if cr.header.Version >= 1 {
		if cr.loadFooter() {
			return cr, nil
		}
	}
	cr.scanIndex()
	return cr, nil
}

// Header returns the capture's version, geometry, and start time.
func (cr *CaptureReader) Header() CaptureHeader { return cr.header }

// NumFrames reports the readable (intact) frame count.
func (cr *CaptureReader) NumFrames() int { return len(cr.offsets) }

// Indexed reports whether the frame index came from a valid footer
// (true) or a recovery scan of the frame stream (false).
func (cr *CaptureReader) Indexed() bool { return cr.indexed }

// Truncated reports whether the capture ends cleanly. A nil return
// means the file is complete; otherwise the error wraps
// ErrTruncatedCapture and describes where the damage starts. The
// intact frames remain fully readable either way.
func (cr *CaptureReader) Truncated() error { return cr.trunc }

// frameBodyOffset is where frame data begins for this capture version.
func (cr *CaptureReader) frameBodyOffset() int64 {
	if cr.header.Version >= 1 {
		return captureHeaderSize
	}
	return helloSize
}

// readHeader sniffs the version and decodes the file header.
func (cr *CaptureReader) readHeader() error {
	if _, err := cr.r.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("transport: seek capture start: %w", err)
	}
	cr.br.Reset(cr.r)
	magic, err := cr.br.Peek(2)
	if err != nil {
		return fmt.Errorf("transport: capture too short for any header: %w", ErrTruncatedCapture)
	}
	if binary.BigEndian.Uint16(magic) == Magic {
		// Legacy v0: the file opens with the stream hello.
		hello, err := DecodeHello(cr.br)
		if err != nil {
			return fmt.Errorf("transport: v0 capture hello: %w", err)
		}
		cr.header = CaptureHeader{Version: 0, Hello: hello}
		return nil
	}
	var hdr [captureHeaderSize]byte
	if _, err := io.ReadFull(cr.br, hdr[:]); err != nil {
		return fmt.Errorf("transport: capture header cut short: %w", ErrTruncatedCapture)
	}
	if [8]byte(hdr[0:8]) != captureMagic {
		return fmt.Errorf("transport: not a capture file (magic %x)", hdr[0:8])
	}
	if v := binary.BigEndian.Uint16(hdr[8:]); v != CaptureVersion {
		return fmt.Errorf("transport: unsupported capture version %d", v)
	}
	if got, want := binary.BigEndian.Uint32(hdr[40:]), crc32.ChecksumIEEE(hdr[:40]); got != want {
		return fmt.Errorf("transport: capture header CRC mismatch %#x != %#x", got, want)
	}
	h := StreamHello{
		NumBins:    binary.BigEndian.Uint32(hdr[12:]),
		FrameRate:  math.Float64frombits(binary.BigEndian.Uint64(hdr[16:])),
		BinSpacing: math.Float64frombits(binary.BigEndian.Uint64(hdr[24:])),
	}
	if !plausibleHello(h) {
		return fmt.Errorf("transport: implausible capture geometry %+v", h)
	}
	cr.header = CaptureHeader{
		Version:         CaptureVersion,
		Hello:           h,
		StartTimeMicros: binary.BigEndian.Uint64(hdr[32:]),
	}
	return nil
}

// loadFooter tries the indexed fast path: locate the footer from the
// fixed-size tail, validate its CRC and every offset it holds, and
// adopt it as the frame index. Any implausibility — short file, bad
// trailer, bad CRC, out-of-range or non-monotonic offsets — reports
// false so the caller falls back to the recovery scan; nothing in a
// damaged footer is trusted.
func (cr *CaptureReader) loadFooter() bool {
	size, err := cr.r.Seek(0, io.SeekEnd)
	if err != nil {
		return false
	}
	body := cr.frameBodyOffset()
	if size < body+captureFooterFixed+captureTailSize {
		return false
	}
	var tail [captureTailSize]byte
	if _, err := cr.r.Seek(size-captureTailSize, io.SeekStart); err != nil {
		return false
	}
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return false
	}
	if [8]byte(tail[8:16]) != captureTrail {
		return false
	}
	footerOff := int64(binary.BigEndian.Uint64(tail[0:]))
	// The footer block spans [footerOff, size-tail-4) with its CRC just
	// after; bound it by the file itself so a hostile offset cannot
	// trigger an oversized read.
	blockEnd := size - captureTailSize - 4
	if footerOff < body || footerOff+captureFooterFixed-4 > blockEnd {
		return false
	}
	block := make([]byte, blockEnd-footerOff)
	if _, err := cr.r.Seek(footerOff, io.SeekStart); err != nil {
		return false
	}
	if _, err := io.ReadFull(cr.r, block); err != nil {
		return false
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return false
	}
	if binary.BigEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(block) {
		return false
	}
	if [4]byte(block[0:4]) != captureFooter {
		return false
	}
	count := binary.BigEndian.Uint64(block[8:16])
	if int(count) < 0 || captureFooterFixed-4+int(count)*8 != len(block) {
		return false
	}
	minFrame := int64(frameWireSize(int(cr.header.Hello.NumBins)))
	offsets := make([]int64, count)
	prev := body - minFrame
	for i := range offsets {
		off := int64(binary.BigEndian.Uint64(block[16+i*8:]))
		if off < prev+minFrame || off+minFrame > footerOff {
			return false
		}
		offsets[i] = off
		prev = off
	}
	cr.offsets = offsets
	cr.indexed = true
	cr.pos, cr.aligned = 0, false
	return true
}

// scanIndex rebuilds the frame index by decoding the CRC-framed
// stream front to back, stopping at the first damage — a cut frame, a
// corrupt CRC, or the (possibly damaged) footer bytes. Everything
// before the stop is intact and becomes the readable prefix; unless
// the stop is a cleanly indexed end of file, Truncated reports it.
func (cr *CaptureReader) scanIndex() {
	cr.offsets = cr.offsets[:0]
	cr.indexed = false
	body := cr.frameBodyOffset()
	if _, err := cr.r.Seek(body, io.SeekStart); err != nil {
		cr.trunc = fmt.Errorf("transport: seek frame body: %w", err)
		return
	}
	cr.br.Reset(cr.r)
	off := body
	for {
		// A complete v1 file ends with the footer; hitting its magic at
		// a frame boundary is the clean end of the scan.
		if cr.header.Version >= 1 {
			if peek, err := cr.br.Peek(4); err == nil && [4]byte(peek[0:4]) == captureFooter {
				break
			}
		}
		f, n, err := readFrame(cr.br, cr.scratchHeader, &cr.scratchBody, cr.bins, cr.header.Hello.NumBins)
		if errors.Is(err, io.EOF) {
			if cr.header.Version >= 1 {
				// Frames ended without a footer: the Close never landed.
				cr.trunc = fmt.Errorf("transport: capture footer missing after %d frames: %w",
					len(cr.offsets), ErrTruncatedCapture)
			}
			// A v0 capture has no footer; clean EOF is a clean end.
			cr.pos, cr.aligned = 0, false
			return
		}
		if err != nil {
			cr.trunc = fmt.Errorf("transport: capture damaged at frame %d (offset %d): %v: %w",
				len(cr.offsets), off, err, ErrTruncatedCapture)
			cr.pos, cr.aligned = 0, false
			return
		}
		cr.offsets = append(cr.offsets, off)
		off += int64(n)
		_ = f
	}
	// Footer reached by scanning — it exists but failed validation in
	// loadFooter (or this reader skipped the fast path): the frames are
	// all intact, the index is not.
	cr.trunc = fmt.Errorf("transport: capture footer damaged after %d frames: %w",
		len(cr.offsets), ErrTruncatedCapture)
	cr.pos, cr.aligned = 0, false
}

// Seek positions the reader so the next Next returns frame k. Seeking
// to NumFrames is allowed and parks the reader at end of capture.
func (cr *CaptureReader) Seek(k int) error {
	if k < 0 || k > len(cr.offsets) {
		return fmt.Errorf("transport: seek to frame %d of %d", k, len(cr.offsets))
	}
	cr.pos = k
	cr.aligned = false
	return nil
}

// Next returns the next frame in sequence, or io.EOF past the last
// intact frame. The returned Bins slice is owned by the reader and
// overwritten by the following Next; callers that keep frames copy
// them. Every frame is CRC-validated as it is read.
//
//blinkradar:hotpath
func (cr *CaptureReader) Next() (Frame, error) {
	if cr.pos >= len(cr.offsets) {
		return Frame{}, io.EOF
	}
	if !cr.aligned {
		if err := cr.align(); err != nil {
			return Frame{}, err
		}
	}
	f, _, err := readFrame(cr.br, cr.scratchHeader, &cr.scratchBody, cr.bins, cr.header.Hello.NumBins)
	if err != nil {
		// Only reachable when a (CRC-valid) footer pointed at bytes that
		// do not decode — treat it like any other tail damage.
		cr.aligned = false
		return Frame{}, errIndexedFrame(cr.pos, err)
	}
	cr.pos++
	return f, nil
}

// align seeks the underlying reader to the current frame offset.
//
//blinkradar:coldpath
func (cr *CaptureReader) align() error {
	if _, err := cr.r.Seek(cr.offsets[cr.pos], io.SeekStart); err != nil {
		return fmt.Errorf("transport: seek frame %d: %w", cr.pos, err)
	}
	cr.br.Reset(cr.r)
	cr.aligned = true
	return nil
}

//blinkradar:coldpath
func errIndexedFrame(k int, err error) error {
	return fmt.Errorf("transport: indexed frame %d does not decode: %v: %w", k, err, ErrTruncatedCapture)
}

// ReadMatrix decodes every intact frame into a frame matrix. It
// rewinds first, so it can be called at any point; a capture holding
// no intact frames is an error. Timestamps are not carried over — the
// matrix derives slow time from its frame rate, which is exact for
// radarsim captures and a documented approximation for chaos-damaged
// ones (dropped frames compress the timeline).
func (cr *CaptureReader) ReadMatrix() (*rf.FrameMatrix, error) {
	return cr.ReadMatrixFrom(0)
}

// ReadMatrixFrom is ReadMatrix starting at frame index start (seek via
// the index, then sequential decode to the end of the intact frames).
func (cr *CaptureReader) ReadMatrixFrom(start int) (*rf.FrameMatrix, error) {
	if start < 0 || start >= len(cr.offsets) {
		return nil, fmt.Errorf("transport: start frame %d outside the %d intact frames", start, len(cr.offsets))
	}
	if err := cr.Seek(start); err != nil {
		return nil, err
	}
	h := cr.header.Hello
	m, err := rf.NewFrameMatrix(len(cr.offsets)-start, int(h.NumBins), h.FrameRate, h.BinSpacing)
	if err != nil {
		return nil, err
	}
	for k := range m.Data {
		f, err := cr.Next()
		if err != nil {
			return nil, err
		}
		copy(m.Data[k], f.Bins)
	}
	return m, nil
}
