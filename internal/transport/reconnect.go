package transport

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"blinkradar/internal/obs"
)

// Backoff parameterises the reconnect schedule: exponential growth
// from Initial to Max with ±Jitter fractional randomisation so a fleet
// of monitors does not hammer a restarting daemon in lockstep.
type Backoff struct {
	// Initial is the delay after the first failure (default 200 ms).
	Initial time.Duration
	// Max caps the delay (default 5 s).
	Max time.Duration
	// Multiplier grows the delay per consecutive failure (default 2).
	Multiplier float64
	// Jitter is the fractional randomisation of each delay in [0, 1)
	// (default 0.2, i.e. ±20%).
	Jitter float64
}

// WithDefaults fills unset fields with the production schedule:
// 200 ms initial, 5 s cap, doubling, ±20% jitter.
func (b Backoff) WithDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 200 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		b.Jitter = 0.2
	}
	return b
}

// Next grows one delay toward the cap. The progression is
// deterministic; randomisation happens per-sleep in Jittered.
func (b Backoff) Next(d time.Duration) time.Duration {
	next := time.Duration(float64(d) * b.Multiplier)
	if next > b.Max {
		next = b.Max
	}
	return next
}

// Jittered randomises d by ±Jitter using rng (nil returns d unchanged,
// as does a zero Jitter). Callers own the rng's synchronisation.
func (b Backoff) Jittered(d time.Duration, rng *rand.Rand) time.Duration {
	if b.Jitter <= 0 || rng == nil {
		return d
	}
	return time.Duration(float64(d) * (1 - b.Jitter + 2*b.Jitter*rng.Float64()))
}

// ReconnectConfig tunes a ReconnectingClient. The zero value is usable:
// default backoff, a 3 s per-attempt dial timeout, and unlimited
// retries.
type ReconnectConfig struct {
	// Backoff is the reconnect schedule.
	Backoff Backoff
	// DialTimeout bounds each connection attempt, hello included
	// (default 3 s).
	DialTimeout time.Duration
	// ReadTimeout bounds each frame read once connected: a server that
	// stalls longer than this fails the stream and triggers a
	// reconnect, instead of the client hanging on a dead but unclosed
	// connection. Zero disables the deadline.
	ReadTimeout time.Duration
	// Resync makes each connection skip corrupt frames in-stream (see
	// Decoder.EnableResync) instead of failing the stream and paying a
	// full reconnect per damaged packet. Skipped frames surface as
	// sequence gaps.
	Resync bool
	// MaxConsecutiveFailures aborts Run after this many dial failures
	// in a row with the last error; 0 retries forever.
	MaxConsecutiveFailures int
	// OnSeqGap, when non-nil, runs on the Run goroutine whenever a
	// forward sequence discontinuity is observed, with the number of
	// frames lost. Consumers use it to tell their pipeline about the
	// gap (e.g. core.Detector.NoteGap) so slow-time state is not
	// silently concatenated across it. Epoch resets (sequence moving
	// backwards) do not fire it: no loss can be attributed.
	OnSeqGap func(missed uint64)
	// OnConnect, when non-nil, runs after every successful dial with
	// the announced geometry and whether this is a reconnect. A non-nil
	// error aborts Run.
	OnConnect func(hello StreamHello, reconnected bool) error
	// OnHelloChange, when non-nil, runs before OnConnect whenever a
	// reconnect announces a different stream geometry (the daemon came
	// back with another capture or radio config). A non-nil error
	// aborts Run; consumers typically rebuild their pipeline here.
	OnHelloChange func(prev, next StreamHello) error
	// Rand, when non-nil, supplies the backoff jitter, making the
	// reconnect schedule reproducible — chaos and soak tests seed it so
	// a failing run can be replayed exactly. Nil (the default) keeps an
	// entropy-seeded source, which production wants: deterministic
	// jitter across a fleet defeats its whole purpose. The client
	// serialises access; the *rand.Rand must not be shared with other
	// concurrent users.
	Rand *rand.Rand
	// Logger receives reconnect diagnostics; nil discards them.
	Logger *log.Logger
	// Registry, when non-nil, exports reconnect metrics.
	Registry *obs.Registry
}

// ReconnectStats is a point-in-time view of a ReconnectingClient's
// lifetime accounting.
type ReconnectStats struct {
	// Connects counts successful dials (including the first).
	Connects uint64
	// Reconnects counts successful dials after the first.
	Reconnects uint64
	// DialFailures counts failed connection attempts.
	DialFailures uint64
	// SeqGaps counts forward discontinuities in Frame.Seq, within a
	// connection or across a reconnect.
	SeqGaps uint64
	// SeqGapFrames totals the frames lost across all gaps.
	SeqGapFrames uint64
	// EpochResets counts sequence numbers moving backwards — the
	// daemon restarted its counter, so no loss can be attributed.
	EpochResets uint64
	// Frames counts frames delivered to the callback.
	Frames uint64
	// Resyncs counts corrupt frames skipped in-stream (Resync mode).
	Resyncs uint64
	// ResyncBytes totals the garbage bytes discarded while realigning.
	ResyncBytes uint64
}

// ReconnectingClient wraps Dial/Run with automatic reconnection so a
// monitor survives a radar daemon restart instead of exiting: the
// in-vehicle deployment expects transient link loss (ignition cycles,
// daemon upgrades) as a matter of course. It is not safe for concurrent
// Run calls; Stats and Hello may be read from other goroutines.
type ReconnectingClient struct {
	addr string
	cfg  ReconnectConfig
	rng  *rand.Rand

	mu        sync.Mutex
	stats     ReconnectStats
	hello     StreamHello
	haveHello bool
	lastSeq   uint64
	haveSeq   bool

	// Metrics (nil-safe no-ops without a registry).
	mReconnects   *obs.Counter
	mDialFailures *obs.Counter
	mSeqGaps      *obs.Counter
	mGapFrames    *obs.Counter
	mEpochResets  *obs.Counter
	mResyncs      *obs.Counter
	mResyncBytes  *obs.Counter
}

// NewReconnectingClient builds a reconnecting consumer of the radar
// stream at addr. Run does the dialling; nothing connects until then.
func NewReconnectingClient(addr string, cfg ReconnectConfig) *ReconnectingClient {
	cfg.Backoff = cfg.Backoff.WithDefaults()
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(discard{}, "", 0)
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	rc := &ReconnectingClient{
		addr: addr,
		cfg:  cfg,
		rng:  rng,
	}
	if r := cfg.Registry; r != nil {
		rc.mReconnects = r.Counter("transport_reconnects_total")
		rc.mDialFailures = r.Counter("transport_dial_failures_total")
		rc.mSeqGaps = r.Counter("transport_client_seq_gaps_total")
		rc.mGapFrames = r.Counter("transport_client_seq_gap_frames_total")
		rc.mEpochResets = r.Counter("transport_epoch_resets_total")
		rc.mResyncs = r.Counter("transport_client_resyncs_total")
		rc.mResyncBytes = r.Counter("transport_client_resync_bytes_total")
	}
	return rc
}

// Stats returns a snapshot of the lifetime accounting.
func (rc *ReconnectingClient) Stats() ReconnectStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

// Hello returns the most recently announced stream geometry and whether
// any connection has succeeded yet.
func (rc *ReconnectingClient) Hello() (StreamHello, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.hello, rc.haveHello
}

// callbackError marks an error raised by the consumer callback, which
// must stop Run rather than trigger a reconnect.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// Run connects and pulls frames, reconnecting with exponential backoff
// whenever the stream drops, until the context is cancelled, fn or a
// geometry callback returns an error, or MaxConsecutiveFailures dial
// attempts fail in a row. Frames are delivered in order; frames missed
// while disconnected surface in Stats as sequence gaps.
func (rc *ReconnectingClient) Run(ctx context.Context, fn func(Frame) error) error {
	backoff := rc.cfg.Backoff.Initial
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		dialCtx, cancel := context.WithTimeout(ctx, rc.cfg.DialTimeout)
		c, err := Dial(dialCtx, rc.addr)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			failures++
			rc.mDialFailures.Inc()
			rc.mu.Lock()
			rc.stats.DialFailures++
			rc.mu.Unlock()
			if max := rc.cfg.MaxConsecutiveFailures; max > 0 && failures >= max {
				return fmt.Errorf("transport: giving up after %d failed attempts: %w", failures, err)
			}
			rc.cfg.Logger.Printf("dial %s failed (attempt %d): %v; retrying in %s", rc.addr, failures, err, backoff)
			if err := rc.sleep(ctx, backoff); err != nil {
				return err
			}
			backoff = rc.nextBackoff(backoff)
			continue
		}
		failures = 0
		backoff = rc.cfg.Backoff.Initial

		if rc.cfg.ReadTimeout > 0 {
			c.SetReadTimeout(rc.cfg.ReadTimeout)
		}
		if rc.cfg.Resync {
			c.EnableResync()
		}
		if err := rc.connected(c.Hello()); err != nil {
			c.Close()
			return err
		}

		err = c.Run(ctx, func(f Frame) error {
			rc.trackSeq(f.Seq)
			if err := fn(f); err != nil {
				return &callbackError{err}
			}
			return nil
		})
		rc.harvestResyncs(c)
		c.Close()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var cb *callbackError
		if errors.As(err, &cb) {
			return cb.err
		}
		// Stream error or clean EOF: the daemon went away; reconnect.
		rc.cfg.Logger.Printf("stream from %s ended: %v; reconnecting", rc.addr, err)
	}
}

// connected records a successful dial and fires the geometry callbacks.
func (rc *ReconnectingClient) connected(h StreamHello) error {
	rc.mu.Lock()
	prev, had := rc.hello, rc.haveHello
	changed := had && prev != h
	rc.hello = h
	rc.haveHello = true
	rc.stats.Connects++
	reconnected := rc.stats.Connects > 1
	if reconnected {
		rc.stats.Reconnects++
	}
	if changed {
		// New geometry means the old sequence space is meaningless.
		rc.haveSeq = false
	}
	rc.mu.Unlock()

	if reconnected {
		rc.mReconnects.Inc()
	}
	if changed {
		rc.cfg.Logger.Printf("stream geometry changed: %+v -> %+v", prev, h)
		if rc.cfg.OnHelloChange != nil {
			if err := rc.cfg.OnHelloChange(prev, h); err != nil {
				return err
			}
		}
	}
	if rc.cfg.OnConnect != nil {
		return rc.cfg.OnConnect(h, reconnected)
	}
	return nil
}

// trackSeq maintains gap accounting across frames and reconnects.
func (rc *ReconnectingClient) trackSeq(seq uint64) {
	var gap uint64
	rc.mu.Lock()
	rc.stats.Frames++
	switch {
	case !rc.haveSeq:
	case seq > rc.lastSeq+1:
		gap = seq - rc.lastSeq - 1
		rc.stats.SeqGaps++
		rc.stats.SeqGapFrames += gap
		rc.mSeqGaps.Inc()
		rc.mGapFrames.Add(gap)
	case seq <= rc.lastSeq:
		rc.stats.EpochResets++
		rc.mEpochResets.Inc()
	}
	rc.lastSeq = seq
	rc.haveSeq = true
	rc.mu.Unlock()
	// Fire outside the lock so the callback may call Stats.
	if gap > 0 && rc.cfg.OnSeqGap != nil {
		rc.cfg.OnSeqGap(gap)
	}
}

// harvestResyncs folds one connection's resync accounting into the
// lifetime stats when the connection ends.
func (rc *ReconnectingClient) harvestResyncs(c *Client) {
	frames, skipped := c.Resyncs()
	if frames == 0 && skipped == 0 {
		return
	}
	rc.mu.Lock()
	rc.stats.Resyncs += frames
	rc.stats.ResyncBytes += skipped
	rc.mu.Unlock()
	rc.mResyncs.Add(frames)
	rc.mResyncBytes.Add(skipped)
}

// sleep waits for d or the context, whichever comes first.
func (rc *ReconnectingClient) sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(rc.jittered(d))
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// jittered randomises d by ±Jitter under the client's rng lock.
func (rc *ReconnectingClient) jittered(d time.Duration) time.Duration {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.cfg.Backoff.Jittered(d, rc.rng)
}

// nextBackoff grows the delay toward the cap.
func (rc *ReconnectingClient) nextBackoff(d time.Duration) time.Duration {
	return rc.cfg.Backoff.Next(d)
}
