package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"

	"blinkradar/internal/obs"
)

// streamOf encodes a hello-less stream of n small frames and returns
// the bytes plus the offset of each frame.
func streamOf(t *testing.T, n int) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	offsets := make([]int, n)
	for i := 0; i < n; i++ {
		offsets[i] = buf.Len()
		if err := enc.Encode(Frame{Seq: uint64(i), Bins: []complex128{complex(float64(i), 0), 1i}}); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), offsets
}

func TestDecoderResyncSkipsCorruptFrame(t *testing.T) {
	data, offsets := streamOf(t, 3)
	// Flip one payload byte of the middle frame: the CRC check fails.
	corrupt := append([]byte{}, data...)
	corrupt[offsets[1]+headerSize+2] ^= 0x40

	// Strict mode: the stream dies at the damaged frame.
	dec := NewDecoder(bytes.NewReader(corrupt))
	if f, err := dec.Decode(); err != nil || f.Seq != 0 {
		t.Fatalf("first frame: %v, %v", f, err)
	}
	if _, err := dec.Decode(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("strict decode of corrupt frame: %v, want ErrCorruptFrame", err)
	}

	// Resync mode: the damaged frame is skipped, the tail survives.
	dec = NewDecoder(bytes.NewReader(corrupt))
	dec.EnableResync()
	var seqs []uint64
	for {
		f, err := dec.Decode()
		if err != nil {
			if err != io.EOF {
				t.Fatalf("resync decode: %v", err)
			}
			break
		}
		seqs = append(seqs, f.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 2 {
		t.Fatalf("resync delivered %v, want [0 2]", seqs)
	}
	frames, skipped := dec.Resyncs()
	if frames != 1 {
		t.Fatalf("%d resyncs, want 1", frames)
	}
	// The CRC failure consumed the frame whole, so realignment landed
	// exactly on the next header: no garbage bytes to discard.
	if skipped != 0 {
		t.Fatalf("resync skipped %d bytes, want 0 (corruption was in-frame)", skipped)
	}
}

func TestDecoderResyncDiscardsInterFrameGarbage(t *testing.T) {
	data, offsets := streamOf(t, 3)
	// Splice garbage between frames 0 and 1. The bad-magic header read
	// consumes 24 bytes — the garbage plus the head of frame 1 — so
	// frame 1 is collateral (it surfaces downstream as a seq gap) and
	// the scan realigns on frame 2.
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x00}
	spliced := append([]byte{}, data[:offsets[1]]...)
	spliced = append(spliced, garbage...)
	spliced = append(spliced, data[offsets[1]:]...)

	dec := NewDecoder(bytes.NewReader(spliced))
	dec.EnableResync()
	var seqs []uint64
	for {
		f, err := dec.Decode()
		if err != nil {
			break
		}
		seqs = append(seqs, f.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 2 {
		t.Fatalf("resync delivered %v, want [0 2]", seqs)
	}
	if _, skipped := dec.Resyncs(); skipped == 0 {
		t.Fatal("resync discarded 0 bytes despite spliced garbage")
	}
}

func TestDecoderExpectedBinsStopsPhantomPayload(t *testing.T) {
	data, offsets := streamOf(t, 3)
	// Corrupt the middle frame's bin-count field to a huge but in-range
	// value. The CRC would catch it eventually — but only after the
	// decoder commits to reading a ~500 KB phantom payload that this
	// stream does not contain.
	corrupt := append([]byte{}, data...)
	binary.BigEndian.PutUint32(corrupt[offsets[1]+20:], 60000)

	// Without the pin the phantom read swallows the rest of the stream:
	// the tail frame is lost to a truncation error.
	dec := NewDecoder(bytes.NewReader(corrupt))
	dec.EnableResync()
	if f, err := dec.Decode(); err != nil || f.Seq != 0 {
		t.Fatalf("first frame: %v, %v", f, err)
	}
	if _, err := dec.Decode(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("unpinned decode: %v, want a truncation error", err)
	}

	// Pinned to the true geometry, the bad count is corruption like any
	// other: fail fast, realign, deliver the tail.
	dec = NewDecoder(bytes.NewReader(corrupt))
	dec.EnableResync()
	dec.SetExpectedBins(2)
	var seqs []uint64
	for {
		f, err := dec.Decode()
		if err != nil {
			break
		}
		seqs = append(seqs, f.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 2 {
		t.Fatalf("pinned resync delivered %v, want [0 2]", seqs)
	}
}

func TestServerDropFramesPolicyKeepsSlowClient(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(nil, nil) // broadcast never touches the source
	srv.SetRegistry(reg)
	srv.SetSlowPolicy(DropFramesForSlowClients)

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	slow := &client{conn: a, ch: make(chan Frame, 2)}
	srv.clients[slow] = struct{}{}

	// Fill the queue, then broadcast into the full queue twice.
	f := Frame{Bins: []complex128{1}}
	srv.broadcast(f)
	srv.broadcast(f)
	for i := 0; i < 2; i++ {
		srv.broadcast(f)
	}

	if got := srv.NumClients(); got != 1 {
		t.Fatalf("%d clients after overflow, want 1 (drop-frames keeps the connection)", got)
	}
	if got := reg.Counter("transport_server_slow_frame_drops_total").Value(); got != 2 {
		t.Fatalf("slow frame drops = %d, want 2", got)
	}
	if got := reg.Counter("transport_server_slow_client_drops_total").Value(); got != 0 {
		t.Fatalf("slow client drops = %d, want 0", got)
	}
	// The queued frames are still there for the client to drain.
	if got := len(slow.ch); got != 2 {
		t.Fatalf("queue depth %d, want 2", got)
	}
}

func TestServerDisconnectPolicyCutsSlowClient(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(nil, nil)
	srv.SetRegistry(reg)
	// Default policy: DisconnectSlowClients.

	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	slow := &client{conn: a, ch: make(chan Frame, 1)}
	srv.clients[slow] = struct{}{}

	f := Frame{Bins: []complex128{1}}
	srv.broadcast(f) // fills the queue
	srv.broadcast(f) // overflows: client is cut

	if got := srv.NumClients(); got != 0 {
		t.Fatalf("%d clients after overflow, want 0 (disconnect policy)", got)
	}
	if got := reg.Counter("transport_server_slow_client_drops_total").Value(); got != 1 {
		t.Fatalf("slow client drops = %d, want 1", got)
	}
	if _, ok := <-drained(slow.ch); ok {
		t.Fatal("dropped client's channel must be closed after draining")
	}
}

// drained consumes the buffered frames off ch and returns it, so the
// caller can observe the close.
func drained(ch chan Frame) chan Frame {
	for len(ch) > 0 {
		<-ch
	}
	return ch
}
