// Package eval implements the evaluation protocol of Section VI:
// matching detected blinks against camera ground truth, accuracy and
// missed-detection statistics, consecutive-miss runs (Fig. 15a) and
// empirical CDFs (Fig. 13).
package eval

import (
	"fmt"
	"math"
	"sort"

	"blinkradar/internal/core"
	"blinkradar/internal/physio"
)

// DefaultMatchTolerance is the maximum |detection - truth| apex offset,
// in seconds, for a detection to count as correct. It covers detection
// timing jitter from smoothing, extremum confirmation at the 40 ms
// frame period, and reopening-edge triggers on long blinks.
const DefaultMatchTolerance = 0.75

// MatchResult is the outcome of matching detections to ground truth.
type MatchResult struct {
	// TruePositives is the number of ground-truth blinks that were
	// detected.
	TruePositives int
	// FalseNegatives is the number of missed ground-truth blinks.
	FalseNegatives int
	// FalsePositives is the number of detections with no matching
	// ground-truth blink.
	FalsePositives int
	// Missed flags, per ground-truth blink in order, whether it was
	// missed — the input to consecutive-miss statistics.
	Missed []bool
}

// Accuracy is the paper's metric: correctly detected blinks over total
// ground-truth blinks. It returns 1 for an empty ground truth.
func (m MatchResult) Accuracy() float64 {
	total := m.TruePositives + m.FalseNegatives
	if total == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(total)
}

// Precision is TP / (TP + FP); 1 when there are no detections.
func (m MatchResult) Precision() float64 {
	det := m.TruePositives + m.FalsePositives
	if det == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(det)
}

// F1 is the harmonic mean of accuracy (recall) and precision.
func (m MatchResult) F1() float64 {
	r := m.Accuracy()
	p := m.Precision()
	if r+p == 0 {
		return 0
	}
	return 2 * r * p / (r + p)
}

// Match greedily pairs detections with ground-truth blinks. Each truth
// event matches the nearest unused detection whose apex lies within
// tolerance of the blink interval's midpoint; pairs are chosen in order
// of increasing time difference so a detection cannot be stolen by a
// farther blink.
func Match(truth []physio.Blink, detected []core.BlinkEvent, tolerance float64) MatchResult {
	if tolerance <= 0 {
		tolerance = DefaultMatchTolerance
	}
	type pair struct {
		t, d int
		diff float64
	}
	var pairs []pair
	for ti, tr := range truth {
		mid := tr.Start + tr.Duration/2
		for di, de := range detected {
			diff := math.Abs(de.Time - mid)
			if diff <= tolerance {
				pairs = append(pairs, pair{t: ti, d: di, diff: diff})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].diff < pairs[j].diff })
	usedT := make([]bool, len(truth))
	usedD := make([]bool, len(detected))
	tp := 0
	for _, p := range pairs {
		if usedT[p.t] || usedD[p.d] {
			continue
		}
		usedT[p.t] = true
		usedD[p.d] = true
		tp++
	}
	missed := make([]bool, len(truth))
	fn := 0
	for i := range truth {
		if !usedT[i] {
			missed[i] = true
			fn++
		}
	}
	fp := 0
	for i := range detected {
		if !usedD[i] {
			fp++
		}
	}
	return MatchResult{
		TruePositives:  tp,
		FalseNegatives: fn,
		FalsePositives: fp,
		Missed:         missed,
	}
}

// MissRunStats counts runs of consecutive missed detections, as in
// Fig. 15a: how often exactly 1, 2, 3, ... blinks in a row are missed.
type MissRunStats struct {
	// Runs[k] is the number of maximal runs of exactly k+1 consecutive
	// misses.
	Runs []int
	// Total is the number of ground-truth blinks observed.
	Total int
}

// RateOfRunLength returns the fraction of ground-truth blinks that fall
// in a maximal miss-run of exactly length n (n >= 1).
func (s MissRunStats) RateOfRunLength(n int) float64 {
	if n < 1 || n > len(s.Runs) || s.Total == 0 {
		return 0
	}
	return float64(s.Runs[n-1]*n) / float64(s.Total)
}

// DefaultWarmup is the initial capture period, in seconds, excluded
// from scoring: the pipeline is still in its cold start (background
// priming, bin selection, viewing-position convergence), matching the
// paper's protocol of evaluating after system initialisation.
const DefaultWarmup = 15.0

// TrimWarmup returns the suffix of truth whose events start at or
// after t0 seconds.
func TrimWarmup(truth []physio.Blink, t0 float64) []physio.Blink {
	out := make([]physio.Blink, 0, len(truth))
	for _, b := range truth {
		if b.Start >= t0 {
			out = append(out, b)
		}
	}
	return out
}

// CountRuns aggregates miss flags (possibly across many captures; pass
// each capture separately to avoid bridging runs across boundaries).
func CountRuns(stats *MissRunStats, missed []bool) {
	stats.Total += len(missed)
	run := 0
	flush := func() {
		if run == 0 {
			return
		}
		for len(stats.Runs) < run {
			stats.Runs = append(stats.Runs, 0)
		}
		stats.Runs[run-1]++
		run = 0
	}
	for _, m := range missed {
		if m {
			run++
		} else {
			flush()
		}
	}
	flush()
}

// CDF is an empirical cumulative distribution over a sample of values.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF; the input is copied and sorted.
func NewCDF(values []float64) (*CDF, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("eval: CDF needs at least one value")
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return &CDF{sorted: s}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max return the support bounds.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Points returns (value, cumulative probability) pairs for plotting.
func (c *CDF) Points() (xs, ps []float64) {
	xs = make([]float64, len(c.sorted))
	ps = make([]float64, len(c.sorted))
	copy(xs, c.sorted)
	for i := range ps {
		ps[i] = float64(i+1) / float64(len(c.sorted))
	}
	return xs, ps
}
