package eval

import (
	"math"
	"testing"

	"blinkradar/internal/core"
	"blinkradar/internal/physio"
)

func blink(start, dur float64) physio.Blink {
	return physio.Blink{Start: start, Duration: dur}
}

func det(t float64) core.BlinkEvent { return core.BlinkEvent{Time: t} }

func TestMatchBasics(t *testing.T) {
	truth := []physio.Blink{blink(1, 0.2), blink(5, 0.2), blink(9, 0.2)}
	detected := []core.BlinkEvent{det(1.1), det(5.3), det(20)}
	m := Match(truth, detected, 0.5)
	if m.TruePositives != 2 || m.FalseNegatives != 1 || m.FalsePositives != 1 {
		t.Fatalf("TP/FN/FP = %d/%d/%d, want 2/1/1", m.TruePositives, m.FalseNegatives, m.FalsePositives)
	}
	if m.Missed[0] || m.Missed[1] || !m.Missed[2] {
		t.Fatalf("missed flags %v", m.Missed)
	}
	if acc := m.Accuracy(); math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %g", acc)
	}
	if p := m.Precision(); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision %g", p)
	}
	if f1 := m.F1(); math.Abs(f1-2.0/3) > 1e-12 {
		t.Fatalf("F1 %g", f1)
	}
}

func TestMatchOneDetectionPerBlink(t *testing.T) {
	// Two detections near one blink: only one may match.
	truth := []physio.Blink{blink(5, 0.3)}
	detected := []core.BlinkEvent{det(5.0), det(5.3)}
	m := Match(truth, detected, 0.5)
	if m.TruePositives != 1 || m.FalsePositives != 1 {
		t.Fatalf("TP/FP = %d/%d, want 1/1", m.TruePositives, m.FalsePositives)
	}
}

func TestMatchNearestWins(t *testing.T) {
	// One detection between two blinks matches the nearer blink.
	truth := []physio.Blink{blink(4.0, 0.2), blink(5.0, 0.2)}
	detected := []core.BlinkEvent{det(4.9)}
	m := Match(truth, detected, 0.75)
	if m.TruePositives != 1 {
		t.Fatalf("TP %d, want 1", m.TruePositives)
	}
	if m.Missed[1] || !m.Missed[0] {
		t.Fatalf("nearest-match flags %v, want the farther blink missed", m.Missed)
	}
}

func TestMatchDefaults(t *testing.T) {
	truth := []physio.Blink{blink(1, 0.2)}
	// Tolerance <= 0 selects the default.
	m := Match(truth, []core.BlinkEvent{det(1 + DefaultMatchTolerance)}, 0)
	if m.TruePositives != 1 {
		t.Fatal("default tolerance not applied")
	}
}

func TestMatchEmpty(t *testing.T) {
	m := Match(nil, nil, 0.5)
	if m.Accuracy() != 1 || m.Precision() != 1 {
		t.Fatal("empty match must score perfect")
	}
	if m.F1() != 1 {
		t.Fatal("empty F1 must be 1")
	}
}

func TestTrimWarmup(t *testing.T) {
	truth := []physio.Blink{blink(2, 0.2), blink(14.9, 0.2), blink(15, 0.2), blink(40, 0.2)}
	got := TrimWarmup(truth, 15)
	if len(got) != 2 || got[0].Start != 15 {
		t.Fatalf("trimmed %v", got)
	}
}

func TestCountRunsAndRates(t *testing.T) {
	var s MissRunStats
	CountRuns(&s, []bool{false, true, false, true, true, false})
	CountRuns(&s, []bool{true})
	// Runs: one of length 1, one of length 2, one of length 1 (second
	// capture; runs must not bridge captures).
	if s.Total != 7 {
		t.Fatalf("total %d, want 7", s.Total)
	}
	if s.Runs[0] != 2 || s.Runs[1] != 1 {
		t.Fatalf("runs %v, want [2 1]", s.Runs)
	}
	if got := s.RateOfRunLength(1); math.Abs(got-2.0/7) > 1e-12 {
		t.Fatalf("rate(1) %g", got)
	}
	if got := s.RateOfRunLength(2); math.Abs(got-2.0/7) > 1e-12 {
		t.Fatalf("rate(2) %g", got)
	}
	if s.RateOfRunLength(3) != 0 || s.RateOfRunLength(0) != 0 {
		t.Fatal("out-of-range run rates must be 0")
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{0.9, 0.7, 1.0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Min() != 0.7 || c.Max() != 1.0 {
		t.Fatalf("bounds %g/%g", c.Min(), c.Max())
	}
	if got := c.Median(); got != 0.9 {
		t.Fatalf("median %g, want 0.9", got)
	}
	if got := c.At(0.8); got != 0.5 {
		t.Fatalf("At(0.8) = %g, want 0.5", got)
	}
	if got := c.At(0.75); got != 0.25 {
		t.Fatalf("At(0.75) = %g, want 0.25", got)
	}
	if got := c.Quantile(0); got != 0.7 {
		t.Fatalf("q0 %g", got)
	}
	if got := c.Quantile(1); got != 1.0 {
		t.Fatalf("q1 %g", got)
	}
	xs, ps := c.Points()
	if len(xs) != 4 || ps[3] != 1 {
		t.Fatalf("points %v %v", xs, ps)
	}
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("empty CDF must be rejected")
	}
}
