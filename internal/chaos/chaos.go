// Package chaos provides seeded, deterministic fault injection for the
// blinkradar frame stream. Two fault surfaces are covered:
//
//   - Injector is frame-level middleware — bursty drops (Gilbert–
//     Elliott), duplicates, reordering, timestamp jitter, non-finite
//     and saturated bins, and mid-stream bin-count changes — installed
//     as a transport.Server frame hook (cmd/radard) or applied to a
//     recorded capture (cmd/radarsim).
//   - ConnFaults/WrapListener corrupt, reset, and stall the byte
//     stream underneath the codec, exercising decoder resync, client
//     read timeouts, and reconnect logic.
//
// Every decision is drawn from a rand.Rand seeded by the caller: equal
// seeds produce equal fault sequences, so integration tests can assert
// exact loss accounting rather than statistical bounds.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"blinkradar/internal/transport"
)

// Config parameterises an Injector. The zero value injects nothing;
// DefaultConfig fills the secondary knobs (burst length, poison
// fraction, saturation value) that only matter once their primary rate
// is non-zero.
type Config struct {
	// Seed drives every random decision. Equal seeds give equal fault
	// sequences over equal inputs.
	Seed int64
	// DropRate is the stationary fraction of frames dropped by the
	// Gilbert–Elliott burst-loss chain, in [0, 1).
	DropRate float64
	// MeanBurstLen is the mean drop-burst length in frames (>= 1).
	MeanBurstLen float64
	// DupProb is the per-frame probability of emitting the frame twice.
	DupProb float64
	// ReorderProb is the per-frame probability of holding a frame back
	// one slot, swapping it with its successor.
	ReorderProb float64
	// JitterMicros adds uniform ±JitterMicros noise to each timestamp.
	JitterMicros uint64
	// PoisonProb is the per-frame probability of writing non-finite
	// (NaN/±Inf) values into a PoisonFrac fraction of the bins.
	PoisonProb float64
	// PoisonFrac is the fraction of bins poisoned in a poisoned frame,
	// in (0, 1].
	PoisonFrac float64
	// SaturateProb is the per-frame probability of railing a PoisonFrac
	// fraction of bins to ±SaturateValue.
	SaturateProb float64
	// SaturateValue is the rail magnitude written into saturated bins.
	SaturateValue float64
	// BinChangeAfter switches the stream geometry to BinChangeTo bins
	// (truncating or zero-padding) after this many input frames. Zero
	// disables the change.
	BinChangeAfter int
	// BinChangeTo is the new bin count once BinChangeAfter is reached.
	BinChangeTo int
	// StartAfter delays all faults until this many frames have passed.
	StartAfter int
	// StopAfter ends the fault window at this input frame (exclusive);
	// zero means the window never closes. A clean tail lets integration
	// tests assert recovery on undamaged input.
	StopAfter int
}

// DefaultConfig returns a no-fault configuration with the secondary
// knobs set to useful values.
func DefaultConfig() Config {
	return Config{
		MeanBurstLen:  3,
		PoisonFrac:    0.1,
		SaturateValue: 1e6,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.DropRate < 0 || c.DropRate >= 1:
		return fmt.Errorf("chaos: drop rate must be in [0, 1), got %g", c.DropRate)
	case c.DropRate > 0 && c.MeanBurstLen < 1:
		return fmt.Errorf("chaos: mean burst length must be at least 1, got %g", c.MeanBurstLen)
	case c.DupProb < 0 || c.DupProb > 1:
		return fmt.Errorf("chaos: dup probability must be in [0, 1], got %g", c.DupProb)
	case c.ReorderProb < 0 || c.ReorderProb > 1:
		return fmt.Errorf("chaos: reorder probability must be in [0, 1], got %g", c.ReorderProb)
	case c.PoisonProb < 0 || c.PoisonProb > 1:
		return fmt.Errorf("chaos: poison probability must be in [0, 1], got %g", c.PoisonProb)
	case c.PoisonProb > 0 && (c.PoisonFrac <= 0 || c.PoisonFrac > 1):
		return fmt.Errorf("chaos: poison fraction must be in (0, 1], got %g", c.PoisonFrac)
	case c.SaturateProb < 0 || c.SaturateProb > 1:
		return fmt.Errorf("chaos: saturate probability must be in [0, 1], got %g", c.SaturateProb)
	case c.SaturateProb > 0 && c.SaturateValue <= 0:
		return fmt.Errorf("chaos: saturate value must be positive, got %g", c.SaturateValue)
	case c.SaturateProb > 0 && (c.PoisonFrac <= 0 || c.PoisonFrac > 1):
		return fmt.Errorf("chaos: poison fraction must be in (0, 1], got %g", c.PoisonFrac)
	case c.BinChangeAfter < 0:
		return fmt.Errorf("chaos: bin-change frame must be non-negative, got %d", c.BinChangeAfter)
	case c.BinChangeAfter > 0 && (c.BinChangeTo < 1 || c.BinChangeTo > transport.MaxBins):
		return fmt.Errorf("chaos: bin-change target must be in [1, %d], got %d", transport.MaxBins, c.BinChangeTo)
	case c.StartAfter < 0:
		return fmt.Errorf("chaos: start frame must be non-negative, got %d", c.StartAfter)
	case c.StopAfter < 0 || (c.StopAfter > 0 && c.StopAfter <= c.StartAfter):
		return fmt.Errorf("chaos: stop frame must be 0 or beyond start (%d), got %d", c.StartAfter, c.StopAfter)
	}
	return nil
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.DupProb > 0 || c.ReorderProb > 0 ||
		c.JitterMicros > 0 || c.PoisonProb > 0 || c.SaturateProb > 0 ||
		c.BinChangeAfter > 0
}

// Stats counts the injector's decisions so far.
type Stats struct {
	// Input is the number of frames offered to the injector.
	Input uint64
	// Emitted is the number of frames it released downstream.
	Emitted uint64
	// Dropped, Duplicated, Reordered, Poisoned, Saturated, Rebinned
	// count the individual fault applications. A held reordered frame
	// that never got a successor is counted in Dropped.
	Dropped, Duplicated, Reordered, Poisoned, Saturated, Rebinned uint64
}

// Injector applies the configured faults to a frame stream. It is
// stateful (burst chain, reorder hold-back) and must be driven from a
// single goroutine — the transport.Server frame hook guarantees that.
type Injector struct {
	cfg      Config
	rng      *rand.Rand
	pGB, pBG float64
	bad      bool
	idx      int
	held     *transport.Frame
	stats    Stats
	out      []transport.Frame
}

// New builds an injector. The Gilbert–Elliott chain parameters are
// derived so the stationary drop fraction equals DropRate and the mean
// bad-state sojourn equals MeanBurstLen.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		out: make([]transport.Frame, 0, 2),
	}
	if cfg.DropRate > 0 {
		inj.pBG = 1 / cfg.MeanBurstLen
		inj.pGB = cfg.DropRate * inj.pBG / (1 - cfg.DropRate)
	}
	return inj, nil
}

// Stats returns the decision counts so far. If a reordered frame is
// still held back it has not been counted anywhere yet; Flush releases
// it.
func (inj *Injector) Stats() Stats { return inj.stats }

// Apply runs one frame through the fault pipeline and returns the
// frames to emit in order (possibly none, possibly two). The returned
// slice is reused by the next call. Mutating faults copy the bins, so
// the input frame is never modified.
func (inj *Injector) Apply(f transport.Frame) []transport.Frame {
	i := inj.idx
	inj.idx++
	inj.stats.Input++
	inj.out = inj.out[:0]
	active := i >= inj.cfg.StartAfter && (inj.cfg.StopAfter == 0 || i < inj.cfg.StopAfter)
	if !active {
		return inj.emit(f)
	}
	if inj.cfg.DropRate > 0 {
		if inj.bad {
			if inj.rng.Float64() < inj.pBG {
				inj.bad = false
			}
		} else if inj.rng.Float64() < inj.pGB {
			inj.bad = true
		}
		if inj.bad {
			inj.stats.Dropped++
			return inj.out
		}
	}
	if inj.cfg.PoisonProb > 0 && inj.rng.Float64() < inj.cfg.PoisonProb {
		f = inj.poison(f)
		inj.stats.Poisoned++
	}
	if inj.cfg.SaturateProb > 0 && inj.rng.Float64() < inj.cfg.SaturateProb {
		f = inj.saturate(f)
		inj.stats.Saturated++
	}
	if inj.cfg.JitterMicros > 0 {
		f.TimestampMicros = inj.jitter(f.TimestampMicros)
	}
	if inj.cfg.BinChangeAfter > 0 && i >= inj.cfg.BinChangeAfter && len(f.Bins) != inj.cfg.BinChangeTo {
		f = inj.rebin(f)
		inj.stats.Rebinned++
	}
	if inj.cfg.ReorderProb > 0 && inj.held == nil && inj.rng.Float64() < inj.cfg.ReorderProb {
		held := f
		inj.held = &held
		return inj.out
	}
	if inj.cfg.DupProb > 0 && inj.rng.Float64() < inj.cfg.DupProb {
		inj.stats.Duplicated++
		inj.emit(f)
	}
	return inj.emit(f)
}

// Flush releases a held reordered frame at end of stream. Install it
// before closing the stream, or the held frame counts as dropped.
func (inj *Injector) Flush() []transport.Frame {
	inj.out = inj.out[:0]
	if inj.held != nil {
		inj.out = append(inj.out, *inj.held)
		inj.stats.Reordered++
		inj.stats.Emitted++
		inj.held = nil
	}
	return inj.out
}

// emit appends f (and any held predecessor, which lands after f — the
// reorder) to the output buffer.
func (inj *Injector) emit(f transport.Frame) []transport.Frame {
	inj.out = append(inj.out, f)
	inj.stats.Emitted++
	if inj.held != nil {
		inj.out = append(inj.out, *inj.held)
		inj.stats.Reordered++
		inj.stats.Emitted++
		inj.held = nil
	}
	return inj.out
}

// jitter perturbs a timestamp by up to ±JitterMicros, clamping at zero.
func (inj *Injector) jitter(t uint64) uint64 {
	j := int64(inj.cfg.JitterMicros)
	delta := inj.rng.Int63n(2*j+1) - j
	if delta < 0 && uint64(-delta) > t {
		return 0
	}
	return uint64(int64(t) + delta)
}

// poison copies the frame and writes NaN/±Inf into a PoisonFrac
// fraction of its bins.
func (inj *Injector) poison(f transport.Frame) transport.Frame {
	bins := append([]complex128(nil), f.Bins...)
	for i := range bins {
		if inj.rng.Float64() >= inj.cfg.PoisonFrac {
			continue
		}
		switch inj.rng.Intn(3) {
		case 0:
			bins[i] = complex(math.NaN(), imag(bins[i]))
		case 1:
			bins[i] = complex(real(bins[i]), math.Inf(1))
		default:
			bins[i] = complex(math.Inf(-1), math.NaN())
		}
	}
	f.Bins = bins
	return f
}

// saturate copies the frame and rails a PoisonFrac fraction of its bins
// to ±SaturateValue.
func (inj *Injector) saturate(f transport.Frame) transport.Frame {
	bins := append([]complex128(nil), f.Bins...)
	v := inj.cfg.SaturateValue
	for i := range bins {
		if inj.rng.Float64() >= inj.cfg.PoisonFrac {
			continue
		}
		if inj.rng.Intn(2) == 0 {
			bins[i] = complex(v, v)
		} else {
			bins[i] = complex(-v, -v)
		}
	}
	f.Bins = bins
	return f
}

// rebin truncates or zero-pads the frame to BinChangeTo bins.
func (inj *Injector) rebin(f transport.Frame) transport.Frame {
	bins := make([]complex128, inj.cfg.BinChangeTo)
	copy(bins, f.Bins)
	f.Bins = bins
	return f
}

// ParseSpec parses the compact fault-spec syntax used by the cmd flags:
// comma-separated key=value pairs.
//
//	seed=N          rng seed (default 0)
//	drop=P          stationary drop rate, [0, 1)
//	burst=L         mean drop-burst length in frames (default 3)
//	dup=P           duplicate probability
//	reorder=P       reorder probability
//	jitter=US       timestamp jitter amplitude in microseconds
//	nan=P           non-finite poison probability
//	nanfrac=F       fraction of bins hit per poisoned frame (default 0.1)
//	sat=P           saturation probability
//	satval=V        saturation rail value (default 1e6)
//	binchange=N:B   switch to B bins after N frames
//	start=N         first faulted frame
//	stop=N          end of the fault window (exclusive; 0 = never)
//
// Example: "seed=7,drop=0.05,burst=4,nan=0.02,start=100,stop=2000".
// An empty spec returns DefaultConfig (no faults).
func ParseSpec(spec string) (Config, error) {
	cfg := DefaultConfig()
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: spec entry %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			cfg.DropRate, err = strconv.ParseFloat(val, 64)
		case "burst":
			cfg.MeanBurstLen, err = strconv.ParseFloat(val, 64)
		case "dup":
			cfg.DupProb, err = strconv.ParseFloat(val, 64)
		case "reorder":
			cfg.ReorderProb, err = strconv.ParseFloat(val, 64)
		case "jitter":
			cfg.JitterMicros, err = strconv.ParseUint(val, 10, 64)
		case "nan":
			cfg.PoisonProb, err = strconv.ParseFloat(val, 64)
		case "nanfrac":
			cfg.PoisonFrac, err = strconv.ParseFloat(val, 64)
		case "sat":
			cfg.SaturateProb, err = strconv.ParseFloat(val, 64)
		case "satval":
			cfg.SaturateValue, err = strconv.ParseFloat(val, 64)
		case "binchange":
			after, to, ok := strings.Cut(val, ":")
			if !ok {
				return Config{}, fmt.Errorf("chaos: binchange wants FRAME:BINS, got %q", val)
			}
			if cfg.BinChangeAfter, err = strconv.Atoi(after); err == nil {
				cfg.BinChangeTo, err = strconv.Atoi(to)
			}
		case "start":
			cfg.StartAfter, err = strconv.Atoi(val)
		case "stop":
			cfg.StopAfter, err = strconv.Atoi(val)
		default:
			return Config{}, fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return Config{}, fmt.Errorf("chaos: spec %s=%s: %w", key, val, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Spec renders the configuration back into ParseSpec syntax, listing
// only the knobs that differ from DefaultConfig.
func (c Config) Spec() string {
	def := DefaultConfig()
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if c.Seed != def.Seed {
		add("seed", strconv.FormatInt(c.Seed, 10))
	}
	if c.DropRate != def.DropRate {
		add("drop", f(c.DropRate))
	}
	if c.MeanBurstLen != def.MeanBurstLen {
		add("burst", f(c.MeanBurstLen))
	}
	if c.DupProb != def.DupProb {
		add("dup", f(c.DupProb))
	}
	if c.ReorderProb != def.ReorderProb {
		add("reorder", f(c.ReorderProb))
	}
	if c.JitterMicros != def.JitterMicros {
		add("jitter", strconv.FormatUint(c.JitterMicros, 10))
	}
	if c.PoisonProb != def.PoisonProb {
		add("nan", f(c.PoisonProb))
	}
	if c.PoisonFrac != def.PoisonFrac {
		add("nanfrac", f(c.PoisonFrac))
	}
	if c.SaturateProb != def.SaturateProb {
		add("sat", f(c.SaturateProb))
	}
	if c.SaturateValue != def.SaturateValue {
		add("satval", f(c.SaturateValue))
	}
	if c.BinChangeAfter != def.BinChangeAfter {
		add("binchange", strconv.Itoa(c.BinChangeAfter)+":"+strconv.Itoa(c.BinChangeTo))
	}
	if c.StartAfter != def.StartAfter {
		add("start", strconv.Itoa(c.StartAfter))
	}
	if c.StopAfter != def.StopAfter {
		add("stop", strconv.Itoa(c.StopAfter))
	}
	return strings.Join(parts, ",")
}
