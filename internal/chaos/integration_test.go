package chaos

import (
	"context"
	"math"
	"math/cmplx"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"blinkradar/internal/core"
	"blinkradar/internal/rf"
	"blinkradar/internal/transport"
)

// The chaos integration suite runs the full radard→radarwatch loop —
// paced MatrixSource, Server with a fault hook or a faulted listener,
// ReconnectingClient feeding a core.Detector — under each injector and
// asserts the recovery invariants: no panic, no goroutine leak, exact
// seq-gap accounting where the fault is deterministic, and a return to
// HealthTracking within the documented bound (ColdStartFrames accepted
// clean frames, plus a small selection-retry slack).

// recoveryBound is the documented re-acquisition bound checked by the
// suite: cold start refills the ring (ColdStartFrames) and selection
// may need a few extra frames if the first pass is degenerate.
func recoveryBound(cfg core.Config) int { return cfg.ColdStartFrames + 10 }

// chaosCapture builds the synthetic face capture used across the suite:
// 40 bins at 25 fps, static clutter, a face return at bin 20 carrying
// the vital-sign arc, thermal noise everywhere.
func chaosCapture(t *testing.T, frames int, seed int64) (*rf.FrameMatrix, int) {
	t.Helper()
	const bins = 40
	const faceBin = 20
	m, err := rf.NewFrameMatrix(frames, bins, 25, 0.0107)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < frames; k++ {
		tt := float64(k) / 25
		row := m.Data[k]
		row[3] += 1.5
		row[30] += complex(0.8, -0.6)
		arc := 0.3*math.Sin(2*math.Pi*0.25*tt) + 0.1*math.Sin(2*math.Pi*1.2*tt)
		row[faceBin] += cmplx.Rect(1.4, arc)
		for b := range row {
			row[b] += complex(rng.NormFloat64()*0.004, rng.NormFloat64()*0.004)
		}
	}
	return m, faceBin
}

// leakCheck records the goroutine count and fails the test if it has
// not returned to base (+scheduler slack) shortly after the test body.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base+3 {
			if time.Now().After(deadline) {
				t.Errorf("goroutines grew from %d to %d: loop leaked", base, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// loopResult is what one radard→radarwatch run hands back for
// assertions.
type loopResult struct {
	stats    transport.ReconnectStats
	runErr   error
	serveErr error
	// delivered maps each delivered sequence number to its delivery
	// count (duplicates included); minSeq/maxSeq frame the range.
	delivered      map[uint64]int
	minSeq, maxSeq uint64
}

// missingInRange counts the sequence numbers inside [minSeq, maxSeq]
// never delivered — the losses a client can actually observe.
func (r loopResult) missingInRange() uint64 {
	if len(r.delivered) == 0 {
		return 0
	}
	return r.maxSeq - r.minSeq + 1 - uint64(len(r.delivered))
}

// runLoop wires the full loop and lets it run to natural exhaustion:
// the finite paced source drains, Serve returns, the client's redials
// fail and Run gives up. Both sides are joined before returning, so a
// leak shows up in leakCheck, not as a hung test.
func runLoop(t *testing.T, m *rf.FrameMatrix, speed float64,
	tune func(*transport.Server), wrap func(net.Listener) net.Listener,
	ccfg transport.ReconnectConfig, onFrame func(transport.Frame) error) loopResult {
	t.Helper()
	src := transport.NewMatrixSource(m, true, false)
	if err := src.SetSpeed(speed); err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	srv := transport.NewServer(src, nil)
	srv.SetMinClients(1)
	srv.SetWriteTimeout(2 * time.Second)
	if tune != nil {
		tune(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if wrap != nil {
		ln = wrap(ln)
	}
	var wg sync.WaitGroup
	res := loopResult{delivered: make(map[uint64]int)}
	wg.Add(1)
	go func() {
		defer wg.Done()
		res.serveErr = srv.Serve(context.Background(), ln)
	}()

	if ccfg.Backoff.Initial == 0 {
		ccfg.Backoff = transport.Backoff{Initial: 10 * time.Millisecond, Max: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.1}
	}
	if ccfg.MaxConsecutiveFailures == 0 {
		ccfg.MaxConsecutiveFailures = 5
	}
	if ccfg.Rand == nil {
		// Deterministic backoff jitter: a failing chaos run replays with
		// the same reconnect schedule.
		ccfg.Rand = rand.New(rand.NewSource(0x5EED))
	}
	rc := transport.NewReconnectingClient(addr, ccfg)
	res.runErr = rc.Run(context.Background(), func(f transport.Frame) error {
		if len(res.delivered) == 0 || f.Seq < res.minSeq {
			res.minSeq = f.Seq
		}
		if f.Seq > res.maxSeq {
			res.maxSeq = f.Seq
		}
		res.delivered[f.Seq]++
		return onFrame(f)
	})
	wg.Wait()
	res.stats = rc.Stats()
	return res
}

// newDetector builds the consumer-side pipeline used by the suite.
// Serial selection keeps the goroutine count flat for leakCheck.
func newDetector(t *testing.T, bins int) *core.Detector {
	t.Helper()
	det, err := core.NewDetector(core.DefaultConfig(), bins, 25, core.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestChaosDropBurstExactAccounting drops ~15% of frames in bursts and
// checks the loss ledger end to end: injector drops == client seq-gap
// frames == detector gap frames, with the edges (losses before the
// first and after the last delivered frame) accounted for.
func TestChaosDropBurstExactAccounting(t *testing.T) {
	leakCheck(t)
	const frames = 1200
	m, _ := chaosCapture(t, frames, 1)
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.DropRate = 0.15
	cfg.MeanBurstLen = 4
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(t, m.NumBins())
	res := runLoop(t, m, 20,
		func(s *transport.Server) { s.SetFrameHook(inj.Apply) }, nil,
		transport.ReconnectConfig{OnSeqGap: det.NoteGap},
		func(f transport.Frame) error { _, _, err := det.Feed(f.Bins); return err },
	)
	if res.stats.Frames == 0 {
		t.Fatalf("no frames delivered: run %v serve %v", res.runErr, res.serveErr)
	}
	missing := res.missingInRange()
	if missing == 0 {
		t.Fatal("15% burst drops produced no observable gaps")
	}
	if res.stats.SeqGapFrames != missing {
		t.Fatalf("client gap accounting %d != %d missing seqs", res.stats.SeqGapFrames, missing)
	}
	if got := det.InputStats().GapFrames; got != missing {
		t.Fatalf("detector gap accounting %d != %d missing seqs", got, missing)
	}
	st := inj.Stats()
	edges := res.minSeq + (frames - 1 - res.maxSeq)
	if st.Dropped != missing+edges {
		t.Fatalf("injector dropped %d, observed %d missing + %d edge losses", st.Dropped, missing, edges)
	}
	if res.stats.EpochResets != 0 {
		t.Fatalf("drop-only fault produced %d epoch resets", res.stats.EpochResets)
	}
	if h := det.Health(); h != core.HealthTracking {
		t.Fatalf("detector ended %v, want tracking", h)
	}
}

// TestChaosLongGapReacquires cuts a deterministic 80-frame hole — wider
// than MaxGapFrames — and checks the detector discards tracking state
// and is back to HealthTracking within the documented bound.
func TestChaosLongGapReacquires(t *testing.T) {
	leakCheck(t)
	const gapStart, gapEnd = 600, 680
	m, _ := chaosCapture(t, 1200, 2)
	det := newDetector(t, m.NumBins())
	sawTrackingBeforeGap := false
	framesAfterReset := -1
	recoveredAfter := -1
	res := runLoop(t, m, 20,
		func(s *transport.Server) {
			s.SetFrameHook(func(f transport.Frame) []transport.Frame {
				if f.Seq >= gapStart && f.Seq < gapEnd {
					return nil
				}
				return []transport.Frame{f}
			})
		}, nil,
		transport.ReconnectConfig{OnSeqGap: det.NoteGap},
		func(f transport.Frame) error {
			if f.Seq < gapStart && det.Health() == core.HealthTracking {
				sawTrackingBeforeGap = true
			}
			_, _, err := det.Feed(f.Bins)
			if f.Seq >= gapEnd {
				if framesAfterReset >= 0 {
					framesAfterReset++
				} else {
					framesAfterReset = 0
				}
				if recoveredAfter < 0 && det.Health() == core.HealthTracking {
					recoveredAfter = framesAfterReset
				}
			}
			return err
		},
	)
	if !sawTrackingBeforeGap {
		t.Fatalf("detector never reached tracking before the gap: %v %v", res.runErr, res.serveErr)
	}
	in := det.InputStats()
	if in.GapFrames != gapEnd-gapStart {
		t.Fatalf("gap frames %d, want %d", in.GapFrames, gapEnd-gapStart)
	}
	if in.GapResets != 1 {
		t.Fatalf("gap resets %d, want exactly 1", in.GapResets)
	}
	bound := recoveryBound(det.Config())
	if recoveredAfter < 0 || recoveredAfter > bound {
		t.Fatalf("recovered after %d clean frames, documented bound is %d", recoveredAfter, bound)
	}
}

// TestChaosCorruptStreamResync flips bytes on the wire and checks the
// client realigns in-stream instead of tearing the connection down,
// with the skipped frames surfacing as ordinary sequence gaps.
func TestChaosCorruptStreamResync(t *testing.T) {
	leakCheck(t)
	m, _ := chaosCapture(t, 1200, 3)
	det := newDetector(t, m.NumBins())
	res := runLoop(t, m, 20, nil,
		func(ln net.Listener) net.Listener {
			return WrapListener(ln, ConnFaults{
				Seed:              3,
				SkipBytes:         64,
				CorruptProb:       2e-4,
				CorruptUntilBytes: 200_000,
			})
		},
		transport.ReconnectConfig{Resync: true, OnSeqGap: det.NoteGap},
		func(f transport.Frame) error { _, _, err := det.Feed(f.Bins); return err },
	)
	if res.stats.Resyncs == 0 {
		t.Fatalf("corrupted stream produced no resyncs (frames %d, run %v)", res.stats.Frames, res.runErr)
	}
	if res.stats.Reconnects != 0 {
		t.Fatalf("resync mode still paid %d reconnects", res.stats.Reconnects)
	}
	if res.stats.Frames < 1000 {
		t.Fatalf("only %d/1200 frames survived light corruption", res.stats.Frames)
	}
	if h := det.Health(); h != core.HealthTracking {
		t.Fatalf("detector ended %v, want tracking", h)
	}
}

// TestChaosConnectionReset abruptly closes the first connection
// mid-stream and checks the client reconnects and the detector rides
// through or re-acquires, ending healthy.
func TestChaosConnectionReset(t *testing.T) {
	leakCheck(t)
	m, _ := chaosCapture(t, 1200, 4)
	det := newDetector(t, m.NumBins())
	res := runLoop(t, m, 20, nil,
		func(ln net.Listener) net.Listener {
			return WrapListener(ln, ConnFaults{Seed: 5, ResetAfterBytes: 120_000, ResetConns: 1})
		},
		transport.ReconnectConfig{OnSeqGap: det.NoteGap},
		func(f transport.Frame) error { _, _, err := det.Feed(f.Bins); return err },
	)
	if res.stats.Reconnects < 1 {
		t.Fatalf("injected reset produced no reconnect: run %v serve %v", res.runErr, res.serveErr)
	}
	if res.stats.Frames == 0 {
		t.Fatal("no frames delivered after reset")
	}
	if h := det.Health(); h != core.HealthTracking {
		t.Fatalf("detector ended %v, want tracking (stats %+v, input %+v)", det.Health(), res.stats, det.InputStats())
	}
}

// TestChaosPoisonedBinsDegrade poisons a deterministic window of frames
// past the repair threshold and checks the degraded-mode contract:
// every poisoned frame rejected, HealthDegraded entered, tracking state
// discarded once the run exceeds MaxGapFrames, and full recovery on
// clean input.
func TestChaosPoisonedBinsDegrade(t *testing.T) {
	leakCheck(t)
	const poisonStart, poisonEnd = 500, 580
	m, _ := chaosCapture(t, 1200, 5)
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.PoisonProb = 1
	cfg.PoisonFrac = 0.6
	cfg.StartAfter = poisonStart
	cfg.StopAfter = poisonEnd
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(t, m.NumBins())
	sawDegraded := false
	res := runLoop(t, m, 20,
		func(s *transport.Server) { s.SetFrameHook(inj.Apply) }, nil,
		transport.ReconnectConfig{OnSeqGap: det.NoteGap},
		func(f transport.Frame) error {
			_, _, err := det.Feed(f.Bins)
			if det.Health() == core.HealthDegraded {
				sawDegraded = true
			}
			return err
		},
	)
	in := det.InputStats()
	if in.Rejected != poisonEnd-poisonStart {
		t.Fatalf("rejected %d frames, want the full poisoned window %d (stats %+v)", in.Rejected, poisonEnd-poisonStart, res.stats)
	}
	if !sawDegraded {
		t.Fatal("80 consecutive rejects never reached HealthDegraded")
	}
	if in.GapResets != 1 {
		t.Fatalf("gap resets %d, want exactly 1 (reject run exceeds MaxGapFrames)", in.GapResets)
	}
	if h := det.Health(); h != core.HealthTracking {
		t.Fatalf("detector ended %v, want tracking", h)
	}
}

// TestChaosBinCountChange switches the stream geometry mid-run and
// checks the consumer detects the new frame width and rebuilds its
// pipeline, reaching tracking on the new geometry.
func TestChaosBinCountChange(t *testing.T) {
	leakCheck(t)
	const changeAt, newBins = 600, 36
	m, _ := chaosCapture(t, 1300, 6)
	cfg := DefaultConfig()
	cfg.Seed = 13
	cfg.BinChangeAfter = changeAt
	cfg.BinChangeTo = newBins
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(t, m.NumBins())
	rebuilds := 0
	res := runLoop(t, m, 20,
		func(s *transport.Server) { s.SetFrameHook(inj.Apply) }, nil,
		transport.ReconnectConfig{OnSeqGap: det.NoteGap},
		func(f transport.Frame) error {
			if len(f.Bins) != det.NumBins() {
				det = newDetector(t, len(f.Bins))
				rebuilds++
			}
			_, _, err := det.Feed(f.Bins)
			return err
		},
	)
	if rebuilds != 1 {
		t.Fatalf("bin-count change forced %d rebuilds, want 1 (run %v)", rebuilds, res.runErr)
	}
	if det.NumBins() != newBins {
		t.Fatalf("rebuilt detector has %d bins, want %d", det.NumBins(), newBins)
	}
	if h := det.Health(); h != core.HealthTracking {
		t.Fatalf("rebuilt detector ended %v, want tracking", h)
	}
}

// TestChaosDuplicatesAndReorder injects duplicate and swapped frames
// and checks the loop absorbs them — dups and reorders surface as epoch
// resets in the client accounting, never as a panic or a stuck
// pipeline.
func TestChaosDuplicatesAndReorder(t *testing.T) {
	leakCheck(t)
	m, _ := chaosCapture(t, 1200, 7)
	cfg := DefaultConfig()
	cfg.Seed = 17
	cfg.DupProb = 0.05
	cfg.ReorderProb = 0.05
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(t, m.NumBins())
	res := runLoop(t, m, 20,
		func(s *transport.Server) { s.SetFrameHook(inj.Apply) }, nil,
		transport.ReconnectConfig{OnSeqGap: det.NoteGap},
		func(f transport.Frame) error { _, _, err := det.Feed(f.Bins); return err },
	)
	st := inj.Stats()
	if st.Duplicated == 0 || st.Reordered == 0 {
		t.Fatalf("injector applied no dup/reorder faults: %+v", st)
	}
	if res.stats.EpochResets == 0 {
		t.Fatal("duplicates/reorders should register as epoch resets in the client accounting")
	}
	if h := det.Health(); h != core.HealthTracking {
		t.Fatalf("detector ended %v, want tracking", h)
	}
}
