package chaos

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"blinkradar"
	"blinkradar/internal/session"
)

// The fleet chaos scenario drives the multi-session service layer the
// way a deployment churns it: hundreds of concurrent streams sharing
// one Manager, half of them killed and immediately re-attached
// mid-stream (an ignition cycle across half the fleet), with exact
// frame accounting demanded for every session segment and full health
// recovery demanded for every survivor and every rejoiner.

const (
	fleetSessions = 400
	fleetFlapped  = 200
	fleetFrames   = 450
	fleetFlapAt   = 150 // flap after this round of submissions
)

// fleetDrain polls until every queue is empty.
func fleetDrain(t *testing.T, m *session.Manager) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for m.Stats().Queued > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet queues never drained: %+v", m.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestChaosFleetFlapRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet scenario feeds ~180k frames")
	}
	leakCheck(t)
	capture, _ := chaosCapture(t, fleetFrames, 0xF1EE7)

	cfg := session.Config{
		NumBins:   40,
		FrameRate: 25,
		WindowSec: 60,
		Core:      blinkradar.DefaultConfig(),
		Shards:    4,
		// Submissions are uniform (one frame per session per round), so
		// the starved-shard worst case under the global pace bound below
		// — one shard's worker descheduled while the rest drain — lands
		// ~fleetSessions*16 frames evenly on that shard's ~100 sessions:
		// 64 each, exactly the default queue depth. Keep per-session
		// capacity well above that so scheduler skew (single-core CI)
		// cannot turn the paced load into backpressure drops.
		QueueFrames: 256,
	}
	m, err := session.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ids := make([]string, fleetSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("fleet-%03d", i)
		if err := m.Attach(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Deterministic victim set: a failing run replays exactly.
	rng := rand.New(rand.NewSource(0xF1A9))
	victims := map[string]bool{}
	for _, i := range rng.Perm(fleetSessions)[:fleetFlapped] {
		victims[ids[i]] = true
	}

	// pace keeps the producers from overflowing any queue: drops here
	// would be legitimate backpressure, but this scenario asserts
	// loss-free accounting, so the load is kept inside capacity.
	pace := func() {
		for m.Stats().Queued > fleetSessions*16 {
			time.Sleep(100 * time.Microsecond)
		}
	}

	for k := 0; k < fleetFrames; k++ {
		for _, id := range ids {
			if err := m.Submit(id, capture.Data[k]); err != nil {
				t.Fatalf("submit frame %d to %s: %v", k, id, err)
			}
		}
		pace()
		if k == fleetFlapAt {
			// Kill and immediately re-attach half the fleet. The detach
			// stats are each first segment's final accounting and must
			// balance exactly even with frames still queued (they fold
			// into Dropped).
			for _, id := range ids {
				if !victims[id] {
					continue
				}
				st, err := m.Detach(id)
				if err != nil {
					t.Fatal(err)
				}
				if st.Submitted != uint64(fleetFlapAt+1) {
					t.Fatalf("%s first segment submitted %d frames, want %d", id, st.Submitted, fleetFlapAt+1)
				}
				if st.Submitted != st.Processed+st.Dropped {
					t.Fatalf("%s first segment accounting broken: %+v", id, st)
				}
				if err := m.Attach(id); err != nil {
					t.Fatalf("re-attach %s: %v", id, err)
				}
			}
		}
	}
	fleetDrain(t, m)

	// Pool accounting: every flap re-attach must have recycled state.
	ms := m.Stats()
	if ms.PoolMisses != fleetSessions {
		t.Fatalf("pool misses %d, want %d (one per cold attach)", ms.PoolMisses, fleetSessions)
	}
	if ms.PoolHits != fleetFlapped {
		t.Fatalf("pool hits %d, want %d (one per flap re-attach)", ms.PoolHits, fleetFlapped)
	}
	if ms.Frames != ms.Processed+ms.Dropped {
		t.Fatalf("fleet-level accounting broken: %+v", ms)
	}

	// Every session — survivor or rejoiner — must be healthy again and
	// balance exactly. Paced load means no backpressure drops at all.
	post := uint64(fleetFrames - fleetFlapAt - 1)
	for _, id := range ids {
		st, err := m.SessionStats(id)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(fleetFrames)
		if victims[id] {
			want = post
		}
		if st.Submitted != want {
			t.Fatalf("%s submitted %d frames, want %d", id, st.Submitted, want)
		}
		if st.Dropped != 0 {
			t.Fatalf("%s dropped %d frames under paced load", id, st.Dropped)
		}
		if st.Processed != want {
			t.Fatalf("%s processed %d of %d frames after drain", id, st.Processed, want)
		}
		if st.Pressure != session.PressureNormal {
			t.Fatalf("%s pressure %v after loss-free run", id, st.Pressure)
		}
		if st.Health != blinkradar.HealthTracking {
			t.Fatalf("%s health %v after %d clean frames (recovery bound %d)",
				id, st.Health, want, recoveryBound(cfg.Core))
		}
		final, err := m.Detach(id)
		if err != nil {
			t.Fatal(err)
		}
		if final.Submitted != final.Processed+final.Dropped {
			t.Fatalf("%s final accounting broken: %+v", id, final)
		}
	}
	if n := m.Sessions(); n != 0 {
		t.Fatalf("%d sessions still attached after full detach", n)
	}
}
