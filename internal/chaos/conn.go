package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ConnFaults parameterises byte-level faults applied underneath the
// frame codec on a server's accepted connections: payload corruption
// (exercising decoder resync), abrupt connection resets (exercising
// reconnect), and write stalls (exercising read deadlines). The zero
// value injects nothing.
type ConnFaults struct {
	// Seed derives each connection's rng; connection i uses
	// Seed + i*7919 so parallel connections stay deterministic
	// independently of accept order races.
	Seed int64
	// SkipBytes protects the head of each connection from corruption —
	// set it past the stream hello so clients can always complete the
	// handshake.
	SkipBytes int
	// CorruptProb is the per-byte probability of XORing a written byte
	// with a random non-zero mask.
	CorruptProb float64
	// CorruptUntilBytes stops corruption after this many bytes on the
	// connection (0 = never stop). A clean tail lets tests assert that
	// the final frames arrive intact.
	CorruptUntilBytes int
	// ResetAfterBytes abruptly closes the connection once this many
	// bytes have been written (0 = off).
	ResetAfterBytes int
	// ResetConns limits resets to the first N accepted connections
	// (0 = every connection), so a reconnecting client eventually gets
	// a stable stream.
	ResetConns int
	// StallEvery inserts a write stall after every StallEvery bytes
	// (0 = off).
	StallEvery int
	// StallFor is the stall duration.
	StallFor time.Duration
}

// Enabled reports whether any byte-level fault is configured.
func (f ConnFaults) Enabled() bool {
	return f.CorruptProb > 0 || f.ResetAfterBytes > 0 || f.StallEvery > 0
}

// WrapListener wraps ln so every accepted connection carries the
// configured byte-level faults. With no faults enabled ln is returned
// unchanged.
func WrapListener(ln net.Listener, cfg ConnFaults) net.Listener {
	if !cfg.Enabled() {
		return ln
	}
	return &faultListener{Listener: ln, cfg: cfg}
}

type faultListener struct {
	net.Listener
	cfg   ConnFaults
	mu    sync.Mutex
	conns int
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	idx := l.conns
	l.conns++
	l.mu.Unlock()
	fc := &faultConn{
		Conn: c,
		cfg:  l.cfg,
		rng:  rand.New(rand.NewSource(l.cfg.Seed + int64(idx)*7919)),
	}
	fc.reset = l.cfg.ResetAfterBytes > 0 &&
		(l.cfg.ResetConns == 0 || idx < l.cfg.ResetConns)
	return fc, nil
}

// faultConn mangles the written byte stream. Writes come from a single
// goroutine per connection (the server's write loop), so the rng and
// counters need no locking.
type faultConn struct {
	net.Conn
	cfg     ConnFaults
	rng     *rand.Rand
	reset   bool
	written int
	scratch []byte
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.reset && c.written >= c.cfg.ResetAfterBytes {
		c.Conn.Close()
		return 0, fmt.Errorf("chaos: injected connection reset after %d bytes", c.written)
	}
	if c.cfg.StallEvery > 0 && c.written/c.cfg.StallEvery != (c.written+len(p))/c.cfg.StallEvery {
		time.Sleep(c.cfg.StallFor)
	}
	out := p
	if c.cfg.CorruptProb > 0 {
		if cap(c.scratch) < len(p) {
			c.scratch = make([]byte, len(p))
		}
		buf := c.scratch[:len(p)]
		copy(buf, p)
		for i := range buf {
			pos := c.written + i
			if pos < c.cfg.SkipBytes {
				continue
			}
			if c.cfg.CorruptUntilBytes > 0 && pos >= c.cfg.CorruptUntilBytes {
				break
			}
			if c.rng.Float64() < c.cfg.CorruptProb {
				buf[i] ^= byte(1 + c.rng.Intn(255))
			}
		}
		out = buf
	}
	n, err := c.Conn.Write(out)
	c.written += n
	return n, err
}
