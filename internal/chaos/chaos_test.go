package chaos

import (
	"math"
	"testing"

	"blinkradar/internal/transport"
)

// mkFrame builds a small test frame with recognisable bin values.
func mkFrame(seq uint64, bins int) transport.Frame {
	f := transport.Frame{Seq: seq, TimestampMicros: seq * 40000, Bins: make([]complex128, bins)}
	for i := range f.Bins {
		f.Bins[i] = complex(float64(seq), float64(i))
	}
	return f
}

// run pushes n frames through an injector and returns the emitted seqs.
func run(t *testing.T, cfg Config, n int) []uint64 {
	t.Helper()
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < n; i++ {
		for _, f := range inj.Apply(mkFrame(uint64(i), 16)) {
			seqs = append(seqs, f.Seq)
		}
	}
	for _, f := range inj.Flush() {
		seqs = append(seqs, f.Seq)
	}
	return seqs
}

func TestInjectorDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.DropRate = 0.1
	cfg.DupProb = 0.05
	cfg.ReorderProb = 0.05
	cfg.JitterMicros = 1000
	a := run(t, cfg, 2000)
	b := run(t, cfg, 2000)
	if len(a) != len(b) {
		t.Fatalf("same seed, different emit counts: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, sequences diverge at %d: %d != %d", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := run(t, cfg, 2000)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestInjectorDropRateAndAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.DropRate = 0.2
	cfg.MeanBurstLen = 4
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	emitted := 0
	for i := 0; i < n; i++ {
		emitted += len(inj.Apply(mkFrame(uint64(i), 8)))
	}
	st := inj.Stats()
	if st.Input != n || st.Emitted != uint64(emitted) || st.Dropped != n-uint64(emitted) {
		t.Fatalf("inconsistent accounting: %+v vs emitted %d", st, emitted)
	}
	rate := float64(st.Dropped) / n
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("stationary drop rate %.3f far from configured 0.2", rate)
	}
}

func TestInjectorFaultWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.DropRate = 0.9
	cfg.MeanBurstLen = 5
	cfg.StartAfter = 100
	cfg.StopAfter = 200
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		out := inj.Apply(mkFrame(uint64(i), 8))
		inWindow := i >= 100 && i < 200
		if !inWindow && len(out) != 1 {
			t.Fatalf("frame %d outside fault window was not passed through", i)
		}
	}
	if st := inj.Stats(); st.Dropped == 0 {
		t.Fatal("no drops inside the fault window at 90% drop rate")
	}
}

func TestInjectorPoisonDoesNotMutateInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.PoisonProb = 1
	cfg.PoisonFrac = 1
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := mkFrame(9, 16)
	out := inj.Apply(in)
	if len(out) != 1 {
		t.Fatalf("want 1 frame, got %d", len(out))
	}
	for i, c := range in.Bins {
		if math.IsNaN(real(c)) || math.IsInf(imag(c), 0) {
			t.Fatalf("input frame bin %d was mutated: %v", i, c)
		}
	}
	poisoned := 0
	for _, c := range out[0].Bins {
		if math.IsNaN(real(c)) || math.IsNaN(imag(c)) || math.IsInf(real(c), 0) || math.IsInf(imag(c), 0) {
			poisoned++
		}
	}
	if poisoned == 0 {
		t.Fatal("poison=1/frac=1 produced no non-finite bins")
	}
}

func TestInjectorReorderSwapsAdjacent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.ReorderProb = 1
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 4; i++ {
		for _, f := range inj.Apply(mkFrame(uint64(i), 4)) {
			seqs = append(seqs, f.Seq)
		}
	}
	for _, f := range inj.Flush() {
		seqs = append(seqs, f.Seq)
	}
	// With certainty-reorder every even frame is held and released
	// after its successor: 0,1,2,3 -> 1,0,3,2.
	want := []uint64{1, 0, 3, 2}
	if len(seqs) != len(want) {
		t.Fatalf("want %v, got %v", want, seqs)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("want %v, got %v", want, seqs)
		}
	}
}

func TestInjectorBinChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.BinChangeAfter = 5
	cfg.BinChangeTo = 32
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		out := inj.Apply(mkFrame(uint64(i), 16))
		want := 16
		if i >= 5 {
			want = 32
		}
		if len(out) != 1 || len(out[0].Bins) != want {
			t.Fatalf("frame %d: want %d bins, got %+v", i, want, out)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "seed=7,drop=0.05,burst=4,dup=0.01,reorder=0.02,jitter=2000,nan=0.02,nanfrac=0.2,sat=0.01,satval=500,binchange=500:32,start=100,stop=2000"
	cfg, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.DropRate != 0.05 || cfg.MeanBurstLen != 4 ||
		cfg.DupProb != 0.01 || cfg.ReorderProb != 0.02 || cfg.JitterMicros != 2000 ||
		cfg.PoisonProb != 0.02 || cfg.PoisonFrac != 0.2 || cfg.SaturateProb != 0.01 ||
		cfg.SaturateValue != 500 || cfg.BinChangeAfter != 500 || cfg.BinChangeTo != 32 ||
		cfg.StartAfter != 100 || cfg.StopAfter != 2000 {
		t.Fatalf("spec parsed wrong: %+v", cfg)
	}
	back, err := ParseSpec(cfg.Spec())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", cfg.Spec(), err)
	}
	if back != cfg {
		t.Fatalf("round trip changed config:\n%+v\n%+v", cfg, back)
	}
	if empty, err := ParseSpec(""); err != nil || empty.Enabled() {
		t.Fatalf("empty spec must be a no-op config, got %+v err %v", empty, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",
		"drop",
		"drop=1.5",
		"binchange=10",
		"binchange=10:0",
		"stop=5,start=10",
		"seed=abc",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q should not parse", spec)
		}
	}
}
