// Package ingest implements the inbound fleet listener: one TCP
// connection per radar stream, speaking the hello+frame codec toward
// the daemon, each stream running through its own pooled detection
// pipeline on a session.Manager. It is the serving half shared by
// cmd/radard's -ingest mode and cmd/radarfleet's embedded soak target —
// the soak harness exercises exactly the code path production runs.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"blinkradar/internal/session"
	"blinkradar/internal/transport"
)

// Options tunes the listener around a caller-owned session.Manager.
type Options struct {
	// NumBins is the geometry every stream's hello must announce;
	// mismatches close the connection before attach.
	NumBins int
	// HelloTimeout bounds how long a fresh connection may take to send
	// its hello (default 10s).
	HelloTimeout time.Duration
	// OnDetach, when non-nil, receives each session's final accounting
	// as its connection ends — after Detach, so the stats are the
	// session's last word. Called from the connection's goroutine.
	OnDetach func(id string, stats session.SessionStats)
	// Logger, when non-nil, receives per-stream errors and — when
	// StatsEvery is set — periodic fleet summaries.
	Logger *log.Logger
	// StatsEvery is the fleet summary period; zero disables it.
	StatsEvery time.Duration
}

// Serve accepts streams on ln until ctx is cancelled, running each
// through mgr. The connection is the session: its remote address is the
// session ID, a decoded sequence gap becomes Manager.NoteGap, EOF (or
// any stream error) detaches. Serve owns ln and closes it on ctx
// cancellation; it returns once the accept loop, its helper
// goroutines, and every in-flight connection goroutine have joined
// (connection reads are unhooked by ctx, so cancellation reaches
// them).
func Serve(ctx context.Context, ln net.Listener, mgr *session.Manager, opts Options) error {
	if opts.HelloTimeout <= 0 {
		opts.HelloTimeout = 10 * time.Second
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ctx.Done()
		ln.Close()
	}()
	if opts.Logger != nil && opts.StatsEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(opts.StatsEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					st := mgr.Stats()
					opts.Logger.Printf("fleet: %d sessions, %d queued, %d frames (%d dropped, %d limited), %d widened, %d degraded",
						st.Sessions, st.Queued, st.Frames, st.Dropped, st.Limited, st.Widens, st.Degrades)
				}
			}
		}()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ServeStream(ctx, conn, mgr, opts); err != nil &&
				!errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && ctx.Err() == nil {
				if opts.Logger != nil {
					opts.Logger.Printf("stream %s: %v", conn.RemoteAddr(), err)
				}
			}
		}()
	}
}

// ServeStream runs one inbound radar stream: hello, geometry check,
// attach, decode/submit loop, detach (with the final stats handed to
// OnDetach). The manager's typed rejections map to connection handling:
// admission refusals close the connection immediately; rate-limited
// frames are discarded and the stream carries on.
func ServeStream(ctx context.Context, conn net.Conn, mgr *session.Manager, opts Options) error {
	defer conn.Close()
	// Tie the blocking reads to the serving lifetime.
	unhook := context.AfterFunc(ctx, func() { conn.Close() })
	defer unhook()

	conn.SetReadDeadline(time.Now().Add(opts.HelloTimeout))
	hello, err := transport.DecodeHello(conn)
	if err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	if int(hello.NumBins) != opts.NumBins {
		return fmt.Errorf("%w: stream announces %d bins, daemon expects %d",
			session.ErrGeometry, hello.NumBins, opts.NumBins)
	}
	conn.SetReadDeadline(time.Time{})

	id := conn.RemoteAddr().String()
	if err := mgr.Attach(id); err != nil {
		return fmt.Errorf("attach: %w", err)
	}
	defer func() {
		if stats, derr := mgr.Detach(id); derr == nil && opts.OnDetach != nil {
			opts.OnDetach(id, stats)
		}
	}()

	dec := transport.NewDecoder(conn)
	dec.SetExpectedBins(hello.NumBins)
	var lastSeq uint64
	haveSeq := false
	for {
		// Planes end to end: the wire carries float32 I/Q pairs, the
		// session queue stores float32 planes, and the pipeline consumes
		// them — no []complex128 frame is ever materialised on this path.
		f, err := dec.DecodePlanes()
		if err != nil {
			return err
		}
		if haveSeq && f.Seq > lastSeq+1 {
			mgr.NoteGap(id, f.Seq-lastSeq-1)
		}
		lastSeq, haveSeq = f.Seq, true
		switch err := mgr.SubmitPlanes(id, f.I, f.Q); {
		case err == nil:
		case errors.Is(err, session.ErrRateLimited):
			// Over budget: the frame is discarded, the stream lives on.
		default:
			return err
		}
	}
}
