// Package obs is the observability layer of the deployment: a
// dependency-free metrics registry (atomic counters, gauges and
// histograms with JSON snapshot export) and a small HTTP admin server
// exposing /metrics, /healthz and pprof. It exists so the radar daemon
// and the in-car monitor can be inspected in the field without pulling
// a metrics framework onto the embedded target.
//
// All metric types are safe for concurrent use and safe to call on a
// nil receiver (a no-op), so hot paths can be instrumented
// unconditionally and pay nothing when no registry is attached.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (not atomic against concurrent
// Add/Set races losing an update, but each store is itself atomic; use
// Set from a single writer when exactness matters).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are upper
// edges; an observation v lands in the first bucket with v <= bound,
// or the implicit overflow bucket past the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefLatencyBuckets covers 10 µs .. 1 s, the plausible span of a
// per-frame pipeline step.
func DefLatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1,
	}
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is the exported state of a histogram. Counts has
// one entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is a point-in-time JSON-marshalable view of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Lookup methods get-or-create, so instrumented packages
// can reference metrics by name without coordination.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil, which is a valid no-op metric.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Later calls with different bounds return
// the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON, the /metrics wire
// format.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return nil
}
