package obs

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Admin serves the runtime introspection endpoints:
//
//	/metrics        JSON snapshot of the registry
//	/healthz        liveness probe (503 while the health check fails)
//	/debug/pprof/*  standard Go profiling handlers
//
// It is deliberately tiny: the daemon runs on an embedded box in a
// vehicle, and the admin port is how field diagnostics happen.
type Admin struct {
	reg    *Registry
	health func() error
	start  time.Time
}

// NewAdmin builds an admin surface over reg. health reports liveness;
// nil means always healthy.
func NewAdmin(reg *Registry, health func() error) *Admin {
	return &Admin{reg: reg, health: health, start: time.Now()}
}

// Handler returns the admin HTTP handler.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.serveMetrics)
	mux.HandleFunc("/healthz", a.serveHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (a *Admin) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = a.reg.WriteJSON(w)
}

func (a *Admin) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := struct {
		Status        string  `json:"status"`
		Error         string  `json:"error,omitempty"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{Status: "ok", UptimeSeconds: time.Since(a.start).Seconds()}
	code := http.StatusOK
	if a.health != nil {
		if err := a.health(); err != nil {
			resp.Status = "unhealthy"
			resp.Error = err.Error()
			code = http.StatusServiceUnavailable
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

// ListenAndServe runs the admin server on addr until the context is
// cancelled, then shuts it down gracefully. It returns nil on a clean
// shutdown.
func (a *Admin) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return a.Serve(ctx, ln)
}

// Serve runs the admin server on an existing listener (useful for
// tests and for binding port 0).
func (a *Admin) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: a.Handler()}
	stop := make(chan struct{})
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
		case <-stop:
		}
	}()
	err := srv.Serve(ln)
	close(stop)
	<-watcher
	if ctx.Err() != nil && errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
