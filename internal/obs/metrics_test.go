package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter %d, want 10", c.Value())
	}
	if r.Counter("frames_total") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge %g, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-556.5) > 1e-9 {
		t.Fatalf("sum %g, want 556.5", h.Sum())
	}
	s := h.snapshot()
	// 0.5 and 1 land in <=1; 5 in <=10; 50 in <=100; 500 overflows.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d has %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	// Re-registering with different bounds keeps the original.
	if got := r.Histogram("latency", []float64{7}); got != h {
		t.Fatal("same name must return the same histogram")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", DefLatencyBuckets()).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge %g, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count %d, want 8000", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames").Add(3)
	r.Gauge("rate").Set(17.5)
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["frames"] != 3 || s.Gauges["rate"] != 17.5 {
		t.Fatalf("snapshot %+v", s)
	}
	h := s.Histograms["lat"]
	if h.Count != 1 || h.Counts[1] != 1 {
		t.Fatalf("histogram snapshot %+v", h)
	}
}
