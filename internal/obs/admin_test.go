package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// startAdmin serves an Admin on a loopback port and returns its base
// URL plus a shutdown func.
func startAdmin(t *testing.T, a *Admin) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()
	return url, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("admin serve: %v", err)
		}
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestAdminMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("transport_server_frames_pumped_total").Add(42)
	reg.Gauge("clients").Set(2)
	url, stop := startAdmin(t, NewAdmin(reg, nil))
	defer stop()

	code, body := get(t, url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("/metrics body is not JSON: %v\n%s", err, body)
	}
	if s.Counters["transport_server_frames_pumped_total"] != 42 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestAdminHealthz(t *testing.T) {
	var failing error
	health := func() error { return failing }
	url, stop := startAdmin(t, NewAdmin(NewRegistry(), health))
	defer stop()

	code, body := get(t, url+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy status %d: %s", code, body)
	}
	var resp struct {
		Status        string  `json:"status"`
		Error         string  `json:"error"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.UptimeSeconds < 0 {
		t.Fatalf("healthz %+v", resp)
	}

	failing = errors.New("radio gone")
	code, body = get(t, url+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "unhealthy" || resp.Error != "radio gone" {
		t.Fatalf("healthz %+v", resp)
	}
}

func TestAdminPprofIndex(t *testing.T) {
	url, stop := startAdmin(t, NewAdmin(NewRegistry(), nil))
	defer stop()
	code, body := get(t, url+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof index status %d: %s", code, body)
	}
	if len(body) == 0 {
		t.Fatal("pprof index returned nothing")
	}
}

func TestAdminGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- NewAdmin(NewRegistry(), nil).Serve(ctx, ln) }()
	// Make one request so the server is definitely up before cancelling.
	get(t, fmt.Sprintf("http://%s/healthz", ln.Addr()))
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled serve returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admin server did not shut down")
	}
}
